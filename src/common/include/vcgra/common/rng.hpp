// Deterministic pseudo-random number generation for CAD algorithms.
//
// All stochastic algorithms in this library (simulated-annealing placement,
// netlist fuzzing, synthetic image generation) take an explicit `Rng` so that
// every experiment is reproducible from a single seed.  The generator is
// xoshiro256** seeded through SplitMix64, which is the standard way to expand
// a 64-bit seed into the 256-bit xoshiro state.
#pragma once

#include <cstdint>
#include <limits>

namespace vcgra::common {

/// SplitMix64 step: used for seeding and as a cheap standalone mixer.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** — fast, high-quality, deterministic PRNG.
/// Satisfies the UniformRandomBitGenerator concept so it can be used with
/// <random> distributions, though the member helpers below avoid
/// distribution-object overhead in hot CAD loops.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Rng(std::uint64_t seed = 0x5eedULL) noexcept { reseed(seed); }

  constexpr void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Uses Lemire's multiply-shift reduction.
  constexpr std::uint64_t next_below(std::uint64_t bound) noexcept {
    if (bound <= 1) return 0;
    const auto wide =
        static_cast<unsigned __int128>(operator()()) * static_cast<unsigned __int128>(bound);
    return static_cast<std::uint64_t>(wide >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  constexpr std::int64_t next_in(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  constexpr double next_double() noexcept {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability `p`.
  constexpr bool next_bool(double p = 0.5) noexcept { return next_double() < p; }

  /// Standard normal via Marsaglia polar method (no <cmath> in header hot path,
  /// so this is defined out of line in terms of next_double by the caller —
  /// kept here for convenience).
  double next_gaussian() noexcept;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace vcgra::common
