// Batch FloPoCo arithmetic over raw bit buffers.
//
// The scalar FpValue operations in fpformat.hpp re-derive the format's
// field masks, re-class the operands and shuffle 16-byte (format, bits)
// pairs on every call — fine for coefficients, wasteful inside a
// million-element stream loop. These kernels hoist every format-derived
// constant out of the element loop and run over contiguous
// std::uint64_t encodings, the storage the execution-plan datapath
// (vcgra/exec_plan.hpp) streams through its arena.
//
// Contract: every batch kernel is bit-identical, element for element, to
// its scalar counterpart (fp_mul / fp_add / fp_mac /
// FpValue::from_double / FpValue::to_double) for every format — asserted
// by the conversion and batch-kernel fuzz suites in test_exec_plan.
#pragma once

#include <cstddef>
#include <cstdint>

#include "vcgra/softfloat/fpformat.hpp"

namespace vcgra::softfloat {

/// Encode a double into the format's bit layout. Bit-identical to
/// FpValue::from_double (RNE, overflow -> inf, underflow -> 0) but pure
/// integer bit manipulation of the IEEE-754 representation — no
/// frexp/nearbyint per element.
std::uint64_t fp_encode_double(const FpFormat& format, double value);

/// Decode format bits into a double. Bit-identical to FpValue::to_double.
double fp_decode_double(const FpFormat& format, std::uint64_t bits);

/// out[i] = a[i] * b[i]. `out` may alias `a` or `b`.
void fp_mul_n(const FpFormat& format, const std::uint64_t* a,
              const std::uint64_t* b, std::uint64_t* out, std::size_t n);

/// out[i] = a[i] * coeff — the mul-by-coefficient PE datapath.
void fp_mul_coeff_n(const FpFormat& format, const std::uint64_t* a,
                    std::uint64_t coeff, std::uint64_t* out, std::size_t n);

/// out[i] = a[i] + (b[i] ^ b_xor). `b_xor` = 0 is a plain add; the
/// format's sign-bit mask turns it into the PE's subtract (sign-flip
/// then add, exactly like the cycle-level simulator and the gate-level
/// adder). `out` may alias `a` or `b`.
void fp_add_xor_n(const FpFormat& format, const std::uint64_t* a,
                  const std::uint64_t* b, std::uint64_t b_xor,
                  std::uint64_t* out, std::size_t n);

inline void fp_add_n(const FpFormat& format, const std::uint64_t* a,
                     const std::uint64_t* b, std::uint64_t* out,
                     std::size_t n) {
  fp_add_xor_n(format, a, b, 0, out, n);
}

/// Fused coefficient-multiply feeding an add in one pass:
/// out[i] = fp_add(a[i], fp_mul(x[i], coeff) ^ mul_xor). The two
/// rounding steps stay separate (bit-identical to running the mul and
/// the add back to back); fusion only removes the intermediate stream's
/// store/load round trip. `mul_xor` = sign mask models a subtract whose
/// rhs is the product.
void fp_axpy_n(const FpFormat& format, const std::uint64_t* a,
               const std::uint64_t* x, std::uint64_t coeff,
               std::uint64_t mul_xor, std::uint64_t* out, std::size_t n);

/// Mirror fusion with the product on the left:
/// out[i] = fp_add(fp_mul(x[i], coeff), b[i] ^ b_xor).
void fp_xpay_n(const FpFormat& format, const std::uint64_t* x,
               std::uint64_t coeff, const std::uint64_t* b,
               std::uint64_t b_xor, std::uint64_t* out, std::size_t n);

/// Decimating MAC over a block: runs acc = fp_mac(acc, x[i], coeff) and
/// emits the accumulator to `out` every `count` consumed samples (then
/// restarts from +0), exactly like the hardware PE's iteration counter.
/// `acc_bits`/`filled` carry the in-flight accumulation across blocks so
/// callers can stream a long input through cache-sized chunks; both must
/// start at 0 for a fresh stream. Returns the number of emitted outputs.
std::size_t fp_mac_n(const FpFormat& format, const std::uint64_t* x,
                     std::uint64_t coeff, std::uint32_t count,
                     std::uint64_t* out, std::size_t n,
                     std::uint64_t* acc_bits, std::uint32_t* filled);

/// One batch pass double -> bits (fp_encode_double per element).
void fp_from_double_n(const FpFormat& format, const double* in,
                      std::uint64_t* out, std::size_t n);

/// One batch pass bits -> double (fp_decode_double per element).
void fp_to_double_n(const FpFormat& format, const std::uint64_t* in,
                    double* out, std::size_t n);

}  // namespace vcgra::softfloat
