// Gate-level generators for FloPoCo-format floating-point operators.
//
// These reproduce what the paper obtained from the FloPoCo generator: pure
// LUT-logic (no DSP) multiply / add datapaths, plus the complete MAC
// processing element of §IV with its coefficient input and iteration
// counter driven by the settings register.
//
// The generators implement *exactly* the algorithm of the software ops in
// fpformat.hpp (same guard/round/sticky rounding, same flush-to-zero), so
// circuit simulation and FpValue arithmetic are bit-exact mirrors; the
// test suite sweeps random operands to enforce this.
//
// Whether the coefficient/count are *parameters* (fully parameterized
// VCGRA: they become TLUT/TCON configuration) or plain inputs
// (conventional VCGRA: they arrive from settings-register flip-flops) is
// chosen by PeStyle — the datapath is identical, which is what makes the
// Table I comparison apples-to-apples.
#pragma once

#include <string>

#include "vcgra/netlist/builder.hpp"
#include "vcgra/softfloat/fpformat.hpp"

namespace vcgra::softfloat {

/// Decoded field view of an FP bus (layout [exc1 exc0 | sign | exp | frac]).
struct FpSlices {
  netlist::Bus frac;
  netlist::Bus exp;
  netlist::NetId sign;
  netlist::NetId exc0;
  netlist::NetId exc1;
  netlist::NetId is_zero;
  netlist::NetId is_normal;
  netlist::NetId is_inf;
  netlist::NetId is_nan;
};

FpSlices fp_slice(netlist::NetlistBuilder& builder, FpFormat format,
                  const netlist::Bus& bus);

netlist::Bus fp_assemble(netlist::NetlistBuilder& builder, FpFormat format,
                         netlist::NetId exc1, netlist::NetId exc0,
                         netlist::NetId sign, const netlist::Bus& exp,
                         const netlist::Bus& frac);

/// Encoded constant (e.g. +0, NaN) as a bus of constant bits.
netlist::Bus fp_const(netlist::NetlistBuilder& builder, const FpValue& value);

/// result = a * b. Both operands are existing buses in the builder's netlist.
netlist::Bus build_fp_multiplier(netlist::NetlistBuilder& builder, FpFormat format,
                                 const netlist::Bus& a, const netlist::Bus& b);

/// result = a + b.
netlist::Bus build_fp_adder(netlist::NetlistBuilder& builder, FpFormat format,
                            const netlist::Bus& a, const netlist::Bus& b);

enum class PeStyle {
  kConventional,   // coefficient & count are regular inputs (settings FFs)
  kParameterized,  // coefficient & count are --PARAM inputs (DCS constants)
};

/// The paper's §IV processing element: floating-point multiply-accumulate
/// with a coefficient and an iteration counter held in the settings
/// register. Each enabled cycle: acc' = acc + coeff*x; when the counter
/// reaches `count`, `done` pulses and the accumulator restarts from zero.
struct MacPe {
  netlist::Netlist netlist;
  netlist::Bus x;       // sample input (fp bus)
  netlist::Bus coeff;   // coefficient (fp bus; param or input per style)
  netlist::Bus count;   // iteration count (integer; param or input per style)
  netlist::NetId enable = netlist::kNullNet;
  netlist::Bus acc;     // accumulator output (fp bus)
  netlist::NetId done = netlist::kNullNet;
};

MacPe build_mac_pe(FpFormat format, PeStyle style, int counter_bits = 16);

}  // namespace vcgra::softfloat
