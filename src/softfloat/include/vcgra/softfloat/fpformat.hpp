// FloPoCo-style parameterized floating point.
//
// The paper's MAC processing element uses the FloPoCo floating-point
// format with a 6-bit exponent and 26-bit mantissa and no hard DSP blocks
// (§IV).  FloPoCo's format differs from IEEE-754 in two ways that matter
// here:
//
//   * a 2-bit *exception* field replaces the reserved exponent encodings
//     (00 = zero, 01 = normal, 10 = infinity, 11 = NaN), so the full
//     exponent range encodes normal numbers and there are no subnormals
//     (results below the normal range flush to zero);
//   * the width is fully parameterized: total = 2 + 1 + we + wf bits,
//     laid out [exception | sign | exponent | fraction].
//
// `FpValue` software arithmetic implements round-to-nearest-even with the
// exact guard/round/sticky algorithm the gate-level generators in
// fpcircuits.hpp implement, so software and circuit results are bit-exact
// replicas of each other — the test suite relies on that.
#pragma once

#include <cstdint>
#include <string>

namespace vcgra::softfloat {

enum class FpClass : std::uint8_t { kZero = 0, kNormal = 1, kInf = 2, kNaN = 3 };

struct FpFormat {
  int we = 6;   // exponent width
  int wf = 26;  // fraction width

  /// The paper's evaluation format: FloPoCo (we=6, wf=26).
  static constexpr FpFormat paper() { return FpFormat{6, 26}; }
  /// IEEE-single-like layout (without subnormals/reserved encodings).
  static constexpr FpFormat single_like() { return FpFormat{8, 23}; }
  static constexpr FpFormat half_like() { return FpFormat{5, 10}; }

  int total_bits() const { return 3 + we + wf; }
  std::int64_t bias() const { return (std::int64_t{1} << (we - 1)) - 1; }
  std::uint64_t exp_mask() const { return (std::uint64_t{1} << we) - 1; }
  std::uint64_t frac_mask() const { return (std::uint64_t{1} << wf) - 1; }

  bool operator==(const FpFormat&) const = default;
};

/// One encoded number; `bits` uses the layout above, LSB-aligned.
class FpValue {
 public:
  FpValue() = default;
  FpValue(FpFormat format, std::uint64_t bits) : format_(format), bits_(bits) {}

  static FpValue zero(FpFormat format, bool negative = false);
  static FpValue infinity(FpFormat format, bool negative = false);
  static FpValue nan(FpFormat format);
  /// Round a double into the format (RNE; overflow -> inf, underflow -> 0).
  static FpValue from_double(FpFormat format, double value);
  /// Assemble from fields (exception forced to "normal").
  static FpValue from_fields(FpFormat format, bool sign, std::uint64_t exponent,
                             std::uint64_t fraction);

  FpFormat format() const { return format_; }
  std::uint64_t bits() const { return bits_; }

  FpClass fp_class() const;
  bool sign() const;
  std::uint64_t exponent() const;  // biased
  std::uint64_t fraction() const;

  bool is_zero() const { return fp_class() == FpClass::kZero; }
  bool is_nan() const { return fp_class() == FpClass::kNaN; }
  bool is_inf() const { return fp_class() == FpClass::kInf; }

  double to_double() const;
  std::string to_string() const;

  /// Bit-exact equality (same format, same bits).
  bool operator==(const FpValue&) const = default;

 private:
  FpFormat format_{};
  std::uint64_t bits_ = 0;
};

/// value = a * b, FloPoCo semantics (RNE, flush-to-zero, exceptions).
FpValue fp_mul(const FpValue& a, const FpValue& b);
/// value = a + b.
FpValue fp_add(const FpValue& a, const FpValue& b);
/// Non-fused multiply-accumulate: acc + (a * b), each step rounded —
/// exactly what the paper's PE computes (multiply, then accumulate).
FpValue fp_mac(const FpValue& acc, const FpValue& a, const FpValue& b);

}  // namespace vcgra::softfloat
