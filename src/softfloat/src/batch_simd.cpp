// SIMD lanes for the batch FloPoCo kernels: AVX-512 and NEON ports.
//
// Every arithmetic step below is the vector transliteration of the
// branchless scalar core in fp_core.hpp (itself a bit-for-bit
// translation of fpformat.cpp): 8 encodings per __m512i (2 per
// uint64x2_t on AArch64), format constants broadcast once per call,
// data-dependent control flow turned into mask blends. Lanes the vector
// path cannot carry — a non-normal operand class, a denormal double at
// the encode boundary — are recomputed through the scalar core and
// merged, so the output is bit-identical to the portable loops for
// every input (asserted by the batch-kernel fuzz in test_exec_plan,
// which exercises whichever port the build selected).
//
// The x86 port is compiled with per-function target attributes, so the
// object file links into a baseline x86-64 build; available() gates
// execution at runtime. AdvSIMD is mandatory on AArch64, so the NEON
// port needs no dispatch attribute and available() is constant-true.
#include "batch_simd.hpp"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define VCGRA_SIMD_X86 1
#define VCGRA_SIMD_NEON 0
#include <immintrin.h>
// GCC's avx512 headers trip -Wmaybe-uninitialized on the _mm512_maskz_*
// idiom (the masked-off operand is intentionally undefined).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
#elif defined(__aarch64__) && (defined(__GNUC__) || defined(__clang__))
#define VCGRA_SIMD_X86 0
#define VCGRA_SIMD_NEON 1
#include <arm_neon.h>
#else
#define VCGRA_SIMD_X86 0
#define VCGRA_SIMD_NEON 0
#endif

namespace vcgra::softfloat::simd {

using fpcore::add_one;
using fpcore::CoeffMul;
using fpcore::Fmt;
using fpcore::mul_one;
using fpcore::mul_one_coeff;
using u64 = std::uint64_t;

#if VCGRA_SIMD_X86

#define VCGRA_TARGET __attribute__((target("avx512f,avx512cd,avx512dq")))

bool available() {
  static const bool ok = __builtin_cpu_supports("avx512f") &&
                         __builtin_cpu_supports("avx512cd") &&
                         __builtin_cpu_supports("avx512dq");
  return ok;
}

namespace {

/// The 64-bit significand-product trick needs 2wf+2 bits; vpmullq needs
/// the same. Wider fractions fall back to the scalar loop whole-call.
bool lanes_fit(const Fmt& m) { return 2 * m.wf + 2 <= 64; }

struct VStage {
  __m512i bits;      // result encodings (valid on `normal_in` lanes)
  __mmask8 res_norm; // ... of those, lanes whose result class is normal
};

/// Shared round-and-pack tail of both vector multipliers: `product` is
/// the lane-wise significand product, `exp_base` the biased operand
/// exponent sum already carrying -bias, `sign` the 0/1 result signs.
/// Mirrors fpcore::mul_pack exactly.
VCGRA_TARGET inline VStage v_mul_pack(const Fmt& m, __m512i sign,
                                      __m512i exp_base, __m512i product) {
  const __m512i frac_mask = _mm512_set1_epi64(static_cast<long long>(m.frac_mask));
  const __m512i hidden = _mm512_set1_epi64(static_cast<long long>(m.hidden));
  const __m512i one = _mm512_set1_epi64(1);

  // top = product in [2,4); guard bit sits at wf-1+top.
  const __m512i top =
      _mm512_and_epi64(_mm512_srli_epi64(product, 2 * m.wf + 1), one);
  const __m512i sh = _mm512_add_epi64(_mm512_set1_epi64(m.wf - 1), top);
  const __m512i frac_pre = _mm512_and_epi64(
      _mm512_srlv_epi64(product, _mm512_add_epi64(sh, one)), frac_mask);
  const __m512i guard = _mm512_and_epi64(_mm512_srlv_epi64(product, sh), one);
  const __m512i below = _mm512_sub_epi64(_mm512_sllv_epi64(one, sh), one);
  const __mmask8 sticky_k = _mm512_test_epi64_mask(product, below);
  const __m512i sticky = _mm512_maskz_mov_epi64(sticky_k, one);
  const __m512i round_up = _mm512_and_epi64(
      guard, _mm512_or_epi64(sticky, _mm512_and_epi64(frac_pre, one)));
  __m512i mant = _mm512_add_epi64(_mm512_or_epi64(hidden, frac_pre), round_up);
  const __m512i exp_round = _mm512_srli_epi64(mant, m.wf + 1);
  mant = _mm512_srlv_epi64(mant, exp_round);

  __m512i exponent =
      _mm512_add_epi64(exp_base, _mm512_add_epi64(top, exp_round));
  const __m512i sign_shifted = _mm512_slli_epi64(sign, m.shift);
  const __mmask8 under =
      _mm512_cmplt_epi64_mask(exponent, _mm512_setzero_si512());
  const __mmask8 over = _mm512_cmpgt_epi64_mask(
      exponent, _mm512_set1_epi64(static_cast<long long>(m.exp_mask)));

  __m512i res = _mm512_or_epi64(
      _mm512_or_epi64(
          _mm512_slli_epi64(_mm512_or_epi64(sign, _mm512_set1_epi64(2)),
                            m.shift),
          _mm512_slli_epi64(exponent, m.wf)),
      _mm512_and_epi64(mant, frac_mask));
  res = _mm512_mask_mov_epi64(res, under, sign_shifted);  // flush to zero
  res = _mm512_mask_mov_epi64(
      res, over,
      _mm512_or_epi64(sign_shifted,
                      _mm512_set1_epi64(static_cast<long long>(m.inf_base))));

  VStage out;
  out.bits = res;
  out.res_norm = _knot_mask8(_kor_mask8(under, over));
  return out;
}

/// Vector fp_mul by a broadcast normal coefficient. Valid only on lanes
/// whose `a` class is normal; the caller patches the rest.
VCGRA_TARGET inline VStage v_mul_coeff(const Fmt& m, __m512i va,
                                       const CoeffMul& c) {
  const __m512i frac_mask = _mm512_set1_epi64(static_cast<long long>(m.frac_mask));
  const __m512i hidden = _mm512_set1_epi64(static_cast<long long>(m.hidden));
  const __m512i ma = _mm512_or_epi64(_mm512_and_epi64(va, frac_mask), hidden);
  const __m512i product =
      _mm512_mullo_epi64(ma, _mm512_set1_epi64(static_cast<long long>(c.mant)));
  const __m512i exp_a = _mm512_and_epi64(
      _mm512_srli_epi64(va, m.wf),
      _mm512_set1_epi64(static_cast<long long>(m.exp_mask)));
  const __m512i exp_base = _mm512_add_epi64(
      exp_a, _mm512_set1_epi64(static_cast<long long>(
                 static_cast<std::int64_t>(c.exponent) - m.bias)));
  const __m512i sign = _mm512_xor_epi64(
      _mm512_and_epi64(_mm512_srli_epi64(va, m.shift),
                       _mm512_set1_epi64(1)),
      _mm512_set1_epi64(static_cast<long long>(c.sign)));
  return v_mul_pack(m, sign, exp_base, product);
}

/// Vector fp_mul of two streams. Valid only on lanes where both classes
/// are normal.
VCGRA_TARGET inline VStage v_mul(const Fmt& m, __m512i va, __m512i vb) {
  const __m512i frac_mask = _mm512_set1_epi64(static_cast<long long>(m.frac_mask));
  const __m512i hidden = _mm512_set1_epi64(static_cast<long long>(m.hidden));
  const __m512i ma = _mm512_or_epi64(_mm512_and_epi64(va, frac_mask), hidden);
  const __m512i mb = _mm512_or_epi64(_mm512_and_epi64(vb, frac_mask), hidden);
  const __m512i product = _mm512_mullo_epi64(ma, mb);
  const __m512i exp_mask_v =
      _mm512_set1_epi64(static_cast<long long>(m.exp_mask));
  const __m512i exp_a =
      _mm512_and_epi64(_mm512_srli_epi64(va, m.wf), exp_mask_v);
  const __m512i exp_b =
      _mm512_and_epi64(_mm512_srli_epi64(vb, m.wf), exp_mask_v);
  const __m512i exp_base = _mm512_add_epi64(
      _mm512_add_epi64(exp_a, exp_b),
      _mm512_set1_epi64(static_cast<long long>(-m.bias)));
  const __m512i sign = _mm512_and_epi64(
      _mm512_xor_epi64(_mm512_srli_epi64(va, m.shift),
                       _mm512_srli_epi64(vb, m.shift)),
      _mm512_set1_epi64(1));
  return v_mul_pack(m, sign, exp_base, product);
}

/// Vector fp_add. Valid only on lanes where both classes are normal;
/// exact cancellation and exponent clamps are handled with blends.
VCGRA_TARGET inline __m512i v_add(const Fmt& m, __m512i va, __m512i vb) {
  const __m512i frac_mask = _mm512_set1_epi64(static_cast<long long>(m.frac_mask));
  const __m512i exp_mask_v = _mm512_set1_epi64(static_cast<long long>(m.exp_mask));
  const __m512i hidden = _mm512_set1_epi64(static_cast<long long>(m.hidden));
  const __m512i one = _mm512_set1_epi64(1);

  // Order by magnitude: X = larger (exp,frac); ties keep a.
  const __m512i frac_a = _mm512_and_epi64(va, frac_mask);
  const __m512i frac_b = _mm512_and_epi64(vb, frac_mask);
  const __m512i exp_a = _mm512_and_epi64(_mm512_srli_epi64(va, m.wf), exp_mask_v);
  const __m512i exp_b = _mm512_and_epi64(_mm512_srli_epi64(vb, m.wf), exp_mask_v);
  const __m512i mag_a = _mm512_or_epi64(_mm512_slli_epi64(exp_a, m.wf), frac_a);
  const __m512i mag_b = _mm512_or_epi64(_mm512_slli_epi64(exp_b, m.wf), frac_b);
  const __mmask8 a_big = _mm512_cmpge_epu64_mask(mag_a, mag_b);
  // mask_blend(k, u, v) = k ? v : u.
  const __m512i x = _mm512_mask_blend_epi64(a_big, vb, va);
  const __m512i y = _mm512_mask_blend_epi64(a_big, va, vb);
  const __m512i exp_x = _mm512_mask_blend_epi64(a_big, exp_b, exp_a);
  const __m512i exp_y = _mm512_mask_blend_epi64(a_big, exp_a, exp_b);

  // Alignment shift with the scalar core's width cap.
  __m512i d = _mm512_sub_epi64(exp_x, exp_y);
  d = _mm512_min_epu64(d, _mm512_set1_epi64(m.wf + 4));
  const __m512i mx = _mm512_slli_epi64(
      _mm512_or_epi64(_mm512_and_epi64(x, frac_mask), hidden), 3);
  const __m512i my_full = _mm512_slli_epi64(
      _mm512_or_epi64(_mm512_and_epi64(y, frac_mask), hidden), 3);
  __m512i my = _mm512_srlv_epi64(my_full, d);
  const __mmask8 sticky_shift =
      _mm512_cmpneq_epi64_mask(_mm512_sllv_epi64(my, d), my_full);
  my = _mm512_mask_or_epi64(my, sticky_shift, my, one);

  // s = eff_sub ? mx - my : mx + my via conditional negation.
  const __m512i sign_x = _mm512_and_epi64(_mm512_srli_epi64(x, m.shift), one);
  const __m512i sign_y = _mm512_and_epi64(_mm512_srli_epi64(y, m.shift), one);
  const __m512i eff = _mm512_xor_epi64(sign_x, sign_y);
  const __m512i neg = _mm512_sub_epi64(_mm512_setzero_si512(), eff);
  const __m512i s = _mm512_add_epi64(
      _mm512_add_epi64(mx, _mm512_xor_epi64(my, neg)), eff);
  const __mmask8 cancel = _mm512_cmpeq_epi64_mask(s, _mm512_setzero_si512());

  // Normalize: leading 1 to bit wf+3 (lzcnt of 0 is 64 — cancel lanes
  // are blended out below, their garbage never escapes).
  const int t = m.wf + 3;
  const __m512i k =
      _mm512_sub_epi64(_mm512_set1_epi64(63), _mm512_lzcnt_epi64(s));
  const __mmask8 carry =
      _mm512_cmpgt_epi64_mask(k, _mm512_set1_epi64(t));
  const __m512i s_r = _mm512_or_epi64(_mm512_srli_epi64(s, 1),
                                      _mm512_and_epi64(s, one));
  const __m512i shl = _mm512_and_epi64(
      _mm512_sub_epi64(_mm512_set1_epi64(t), k), _mm512_set1_epi64(63));
  const __m512i s_l = _mm512_sllv_epi64(s, shl);
  const __m512i s_norm = _mm512_mask_blend_epi64(carry, s_l, s_r);

  const __m512i frac_pre =
      _mm512_and_epi64(_mm512_srli_epi64(s_norm, 3), frac_mask);
  const __m512i guard = _mm512_and_epi64(_mm512_srli_epi64(s_norm, 2), one);
  const __mmask8 sticky_k =
      _mm512_test_epi64_mask(s_norm, _mm512_set1_epi64(3));
  const __m512i sticky = _mm512_maskz_mov_epi64(sticky_k, one);
  const __m512i round_up = _mm512_and_epi64(
      guard, _mm512_or_epi64(sticky, _mm512_and_epi64(frac_pre, one)));
  __m512i mant = _mm512_add_epi64(_mm512_or_epi64(hidden, frac_pre), round_up);
  const __m512i mant_carry = _mm512_srli_epi64(mant, m.wf + 1);
  mant = _mm512_srlv_epi64(mant, mant_carry);

  __m512i exponent = _mm512_add_epi64(
      exp_x, _mm512_sub_epi64(k, _mm512_set1_epi64(t)));
  exponent = _mm512_add_epi64(exponent, mant_carry);

  const __m512i sign_shifted = _mm512_slli_epi64(sign_x, m.shift);
  const __mmask8 under =
      _mm512_cmplt_epi64_mask(exponent, _mm512_setzero_si512());
  const __mmask8 over = _mm512_cmpgt_epi64_mask(exponent, exp_mask_v);

  __m512i res = _mm512_or_epi64(
      _mm512_or_epi64(
          _mm512_slli_epi64(_mm512_or_epi64(sign_x, _mm512_set1_epi64(2)),
                            m.shift),
          _mm512_slli_epi64(exponent, m.wf)),
      _mm512_and_epi64(mant, frac_mask));
  res = _mm512_mask_mov_epi64(res, under, sign_shifted);
  res = _mm512_mask_mov_epi64(
      res, over,
      _mm512_or_epi64(sign_shifted,
                      _mm512_set1_epi64(static_cast<long long>(m.inf_base))));
  res = _mm512_maskz_mov_epi64(_knot_mask8(cancel), res);  // +0 on cancel
  return res;
}

/// Class-of-lane == normal mask.
VCGRA_TARGET inline __mmask8 v_normal(const Fmt& m, __m512i v) {
  const __m512i cls = _mm512_and_epi64(_mm512_srli_epi64(v, m.shift + 1),
                                       _mm512_set1_epi64(3));
  return _mm512_cmpeq_epi64_mask(cls, _mm512_set1_epi64(1));
}

VCGRA_TARGET inline __m512i v_load(const std::uint64_t* p, __mmask8 lane_mask) {
  return _mm512_maskz_loadu_epi64(lane_mask, p);
}

}  // namespace

VCGRA_TARGET void mul_coeff_n(const Fmt& m, const std::uint64_t* a, u64 coeff,
                              std::uint64_t* out, std::size_t n) {
  const CoeffMul c(m, coeff);
  if (!lanes_fit(m) || c.cls != 1) {  // special coefficient: scalar ladder
    for (std::size_t i = 0; i < n; ++i) out[i] = mul_one_coeff(m, a[i], c);
    return;
  }
  for (std::size_t i = 0; i < n; i += 8) {
    const __mmask8 lanes =
        n - i >= 8 ? 0xff : static_cast<__mmask8>((1u << (n - i)) - 1);
    const __m512i va = v_load(a + i, lanes);
    const VStage stage = v_mul_coeff(m, va, c);
    // `out` may alias `a`: snapshot the loaded lanes before storing so
    // the special-class patch reads originals, not the vector result.
    __mmask8 patch = _kand_mask8(lanes, _knot_mask8(v_normal(m, va)));
    alignas(64) u64 ta[8];
    if (patch) _mm512_store_epi64(ta, va);
    _mm512_mask_storeu_epi64(out + i, lanes, stage.bits);
    while (patch) {
      const unsigned lane = static_cast<unsigned>(__builtin_ctz(patch));
      out[i + lane] = mul_one_coeff(m, ta[lane], c);
      patch = static_cast<__mmask8>(patch & (patch - 1));
    }
  }
}

VCGRA_TARGET void mul_n(const Fmt& m, const std::uint64_t* a,
                        const std::uint64_t* b, std::uint64_t* out,
                        std::size_t n) {
  if (!lanes_fit(m)) {
    for (std::size_t i = 0; i < n; ++i) out[i] = mul_one(m, a[i], b[i]);
    return;
  }
  for (std::size_t i = 0; i < n; i += 8) {
    const __mmask8 lanes =
        n - i >= 8 ? 0xff : static_cast<__mmask8>((1u << (n - i)) - 1);
    const __m512i va = v_load(a + i, lanes);
    const __m512i vb = v_load(b + i, lanes);
    const VStage stage = v_mul(m, va, vb);
    // `out` may alias either input: patch from register snapshots.
    __mmask8 patch = _kand_mask8(
        lanes, _knot_mask8(_kand_mask8(v_normal(m, va), v_normal(m, vb))));
    alignas(64) u64 ta[8], tb[8];
    if (patch) {
      _mm512_store_epi64(ta, va);
      _mm512_store_epi64(tb, vb);
    }
    _mm512_mask_storeu_epi64(out + i, lanes, stage.bits);
    while (patch) {
      const unsigned lane = static_cast<unsigned>(__builtin_ctz(patch));
      out[i + lane] = mul_one(m, ta[lane], tb[lane]);
      patch = static_cast<__mmask8>(patch & (patch - 1));
    }
  }
}

VCGRA_TARGET void add_xor_n(const Fmt& m, const std::uint64_t* a,
                            const std::uint64_t* b, u64 b_xor,
                            std::uint64_t* out, std::size_t n) {
  const __m512i vxor = _mm512_set1_epi64(static_cast<long long>(b_xor));
  for (std::size_t i = 0; i < n; i += 8) {
    const __mmask8 lanes =
        n - i >= 8 ? 0xff : static_cast<__mmask8>((1u << (n - i)) - 1);
    const __m512i va = v_load(a + i, lanes);
    const __m512i vb = _mm512_xor_epi64(v_load(b + i, lanes), vxor);
    const __m512i sum = v_add(m, va, vb);
    // `out` may alias either input: patch from register snapshots (vb
    // already carries b_xor, so the scalar redo applies none).
    __mmask8 patch = _kand_mask8(
        lanes, _knot_mask8(_kand_mask8(v_normal(m, va), v_normal(m, vb))));
    alignas(64) u64 ta[8], tb[8];
    if (patch) {
      _mm512_store_epi64(ta, va);
      _mm512_store_epi64(tb, vb);
    }
    _mm512_mask_storeu_epi64(out + i, lanes, sum);
    while (patch) {
      const unsigned lane = static_cast<unsigned>(__builtin_ctz(patch));
      out[i + lane] = add_one(m, ta[lane], tb[lane]);
      patch = static_cast<__mmask8>(patch & (patch - 1));
    }
  }
}

VCGRA_TARGET void axpy_n(const Fmt& m, const std::uint64_t* a,
                         const std::uint64_t* x, u64 coeff, u64 mul_xor,
                         std::uint64_t* out, std::size_t n) {
  const CoeffMul c(m, coeff);
  if (!lanes_fit(m) || c.cls != 1) {
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = add_one(m, a[i], mul_one_coeff(m, x[i], c) ^ mul_xor);
    }
    return;
  }
  const __m512i vxor = _mm512_set1_epi64(static_cast<long long>(mul_xor));
  for (std::size_t i = 0; i < n; i += 8) {
    const __mmask8 lanes =
        n - i >= 8 ? 0xff : static_cast<__mmask8>((1u << (n - i)) - 1);
    const __m512i va = v_load(a + i, lanes);
    const __m512i vx = v_load(x + i, lanes);
    const VStage mul = v_mul_coeff(m, vx, c);
    const __m512i prod = _mm512_xor_epi64(mul.bits, vxor);
    const __m512i sum = v_add(m, va, prod);
    // Patch: special a/x operands, or a mul that clamped to zero/inf
    // (the vector add assumes normal operands). `out` may alias an
    // input, so snapshot the loaded lanes before storing.
    const __mmask8 ok = _kand_mask8(
        _kand_mask8(v_normal(m, va), v_normal(m, vx)), mul.res_norm);
    __mmask8 patch = _kand_mask8(lanes, _knot_mask8(ok));
    alignas(64) u64 ta[8], tx[8];
    if (patch) {
      _mm512_store_epi64(ta, va);
      _mm512_store_epi64(tx, vx);
    }
    _mm512_mask_storeu_epi64(out + i, lanes, sum);
    while (patch) {
      const unsigned lane = static_cast<unsigned>(__builtin_ctz(patch));
      out[i + lane] =
          add_one(m, ta[lane], mul_one_coeff(m, tx[lane], c) ^ mul_xor);
      patch = static_cast<__mmask8>(patch & (patch - 1));
    }
  }
}

VCGRA_TARGET void xpay_n(const Fmt& m, const std::uint64_t* x, u64 coeff,
                         const std::uint64_t* b, u64 b_xor, std::uint64_t* out,
                         std::size_t n) {
  const CoeffMul c(m, coeff);
  if (!lanes_fit(m) || c.cls != 1) {
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = add_one(m, mul_one_coeff(m, x[i], c), b[i] ^ b_xor);
    }
    return;
  }
  const __m512i vxor = _mm512_set1_epi64(static_cast<long long>(b_xor));
  for (std::size_t i = 0; i < n; i += 8) {
    const __mmask8 lanes =
        n - i >= 8 ? 0xff : static_cast<__mmask8>((1u << (n - i)) - 1);
    const __m512i vx = v_load(x + i, lanes);
    const __m512i vb = _mm512_xor_epi64(v_load(b + i, lanes), vxor);
    const VStage mul = v_mul_coeff(m, vx, c);
    const __m512i sum = v_add(m, mul.bits, vb);
    // `out` may alias an input: snapshot before storing (vb already
    // carries b_xor, so the scalar redo applies none).
    const __mmask8 ok = _kand_mask8(
        _kand_mask8(v_normal(m, vx), v_normal(m, vb)), mul.res_norm);
    __mmask8 patch = _kand_mask8(lanes, _knot_mask8(ok));
    alignas(64) u64 tx[8], tb[8];
    if (patch) {
      _mm512_store_epi64(tx, vx);
      _mm512_store_epi64(tb, vb);
    }
    _mm512_mask_storeu_epi64(out + i, lanes, sum);
    while (patch) {
      const unsigned lane = static_cast<unsigned>(__builtin_ctz(patch));
      out[i + lane] = add_one(m, mul_one_coeff(m, tx[lane], c), tb[lane]);
      patch = static_cast<__mmask8>(patch & (patch - 1));
    }
  }
}

VCGRA_TARGET void from_double_n(const Fmt& m, const double* in,
                                std::uint64_t* out, std::size_t n) {
  if (m.wf >= 52) {  // no fraction bits to drop: scalar path
    for (std::size_t i = 0; i < n; ++i) out[i] = fpcore::encode_one(m, in[i]);
    return;
  }
  const int drop = 52 - m.wf;
  const __m512i one = _mm512_set1_epi64(1);
  const __m512i mask52 = _mm512_set1_epi64((1ll << 52) - 1);
  const __m512i frac_mask = _mm512_set1_epi64(static_cast<long long>(m.frac_mask));
  const __m512i exp_mask_v = _mm512_set1_epi64(static_cast<long long>(m.exp_mask));
  const __m512i hidden = _mm512_set1_epi64(static_cast<long long>(m.hidden));
  const __m512i sticky_below = _mm512_set1_epi64((1ll << (drop - 1)) - 1);

  for (std::size_t i = 0; i < n; i += 8) {
    const __mmask8 lanes =
        n - i >= 8 ? 0xff : static_cast<__mmask8>((1u << (n - i)) - 1);
    const __m512i d = _mm512_maskz_loadu_epi64(
        lanes, reinterpret_cast<const long long*>(in + i));
    const __m512i sign = _mm512_srli_epi64(d, 63);
    const __m512i dexp =
        _mm512_and_epi64(_mm512_srli_epi64(d, 52), _mm512_set1_epi64(0x7ff));
    const __m512i dfrac = _mm512_and_epi64(d, mask52);
    const __mmask8 exp_all1 =
        _mm512_cmpeq_epi64_mask(dexp, _mm512_set1_epi64(0x7ff));
    const __mmask8 exp_zero =
        _mm512_cmpeq_epi64_mask(dexp, _mm512_setzero_si512());
    const __mmask8 frac_zero =
        _mm512_cmpeq_epi64_mask(dfrac, _mm512_setzero_si512());
    const __mmask8 denormal = _kand_mask8(exp_zero, _knot_mask8(frac_zero));

    // Normal-double path (RNE from 52 to wf fraction bits).
    __m512i frac = _mm512_srli_epi64(dfrac, drop);
    const __m512i guard =
        _mm512_and_epi64(_mm512_srli_epi64(dfrac, drop - 1), one);
    const __mmask8 sticky_k = _mm512_test_epi64_mask(dfrac, sticky_below);
    const __m512i sticky = _mm512_maskz_mov_epi64(sticky_k, one);
    const __m512i round_up = _mm512_and_epi64(
        guard, _mm512_or_epi64(sticky, _mm512_and_epi64(frac, one)));
    frac = _mm512_add_epi64(frac, round_up);
    const __mmask8 frac_carry = _mm512_cmpeq_epi64_mask(frac, hidden);
    frac = _mm512_maskz_mov_epi64(_knot_mask8(frac_carry), frac);
    // exponent = (e2 - 1) + bias = dexp - 1023 + bias (+ rounding carry).
    __m512i exponent = _mm512_add_epi64(
        dexp, _mm512_set1_epi64(static_cast<long long>(m.bias - 1023)));
    exponent = _mm512_add_epi64(
        exponent, _mm512_maskz_mov_epi64(frac_carry, one));

    const __m512i sign_shifted = _mm512_slli_epi64(sign, m.shift);
    const __mmask8 under =
        _mm512_cmplt_epi64_mask(exponent, _mm512_setzero_si512());
    const __mmask8 over = _mm512_cmpgt_epi64_mask(exponent, exp_mask_v);

    const __m512i inf_bits = _mm512_or_epi64(
        sign_shifted, _mm512_set1_epi64(static_cast<long long>(m.inf_base)));
    __m512i res = _mm512_or_epi64(
        _mm512_or_epi64(
            _mm512_slli_epi64(_mm512_or_epi64(sign, _mm512_set1_epi64(2)),
                              m.shift),
            _mm512_slli_epi64(exponent, m.wf)),
        _mm512_and_epi64(frac, frac_mask));
    res = _mm512_mask_mov_epi64(res, under, sign_shifted);
    res = _mm512_mask_mov_epi64(res, over, inf_bits);
    // Specials: ±0, ±inf, NaN.
    res = _mm512_mask_mov_epi64(res, _kand_mask8(exp_zero, frac_zero),
                                sign_shifted);
    res = _mm512_mask_mov_epi64(res, _kand_mask8(exp_all1, frac_zero),
                                inf_bits);
    res = _mm512_mask_mov_epi64(
        res, _kand_mask8(exp_all1, _knot_mask8(frac_zero)),
        _mm512_set1_epi64(static_cast<long long>(m.nan_bits)));
    _mm512_mask_storeu_epi64(out + i, lanes, res);

    // Denormal doubles renormalize through the scalar encoder (rare).
    __mmask8 patch = _kand_mask8(lanes, denormal);
    while (patch) {
      const unsigned lane = static_cast<unsigned>(__builtin_ctz(patch));
      out[i + lane] = fpcore::encode_one(m, in[i + lane]);
      patch = static_cast<__mmask8>(patch & (patch - 1));
    }
  }
}

VCGRA_TARGET void to_double_n(const Fmt& m, const std::uint64_t* in,
                              double* out, std::size_t n) {
  if (m.wf > 52) {  // fraction wider than a double's: scalar whole-call
    for (std::size_t i = 0; i < n; ++i) out[i] = fpcore::decode_one(m, in[i]);
    return;
  }
  const __m512i one = _mm512_set1_epi64(1);
  const __m512i three = _mm512_set1_epi64(3);
  const __m512i exp_mask_v = _mm512_set1_epi64(static_cast<long long>(m.exp_mask));
  const __m512i frac_mask = _mm512_set1_epi64(static_cast<long long>(m.frac_mask));
  // dexp = (exponent - bias) + 1023, folded into one constant add.
  const __m512i rebias =
      _mm512_set1_epi64(static_cast<long long>(1023 - m.bias));

  for (std::size_t i = 0; i < n; i += 8) {
    const __mmask8 lanes =
        n - i >= 8 ? 0xff : static_cast<__mmask8>((1u << (n - i)) - 1);
    const __m512i bits = v_load(in + i, lanes);
    const __m512i cls =
        _mm512_and_epi64(_mm512_srli_epi64(bits, m.shift + 1), three);
    const __m512i sign =
        _mm512_and_epi64(_mm512_srli_epi64(bits, m.shift), one);
    const __m512i exponent =
        _mm512_and_epi64(_mm512_srli_epi64(bits, m.wf), exp_mask_v);
    const __m512i fraction = _mm512_and_epi64(bits, frac_mask);
    const __m512i dexp = _mm512_add_epi64(exponent, rebias);

    // decode_one's exact normal-range assembly: the fraction widens
    // losslessly into a double's 52 bits.
    const __m512i res = _mm512_or_epi64(
        _mm512_or_epi64(_mm512_slli_epi64(sign, 63),
                        _mm512_slli_epi64(dexp, 52)),
        _mm512_slli_epi64(fraction, 52 - m.wf));

    const __mmask8 normal = _mm512_cmpeq_epi64_mask(cls, one);
    const __mmask8 in_range =
        _kand_mask8(_mm512_cmpgt_epi64_mask(dexp, _mm512_setzero_si512()),
                    _mm512_cmplt_epi64_mask(dexp, _mm512_set1_epi64(2047)));
    // Specials and out-of-double-range exponents redo through the scalar
    // decoder; snapshot before the store in case `out` overlays `in`
    // (the raw-bits boundary decodes in place).
    __mmask8 patch =
        _kand_mask8(lanes, _knot_mask8(_kand_mask8(normal, in_range)));
    alignas(64) u64 tbits[8];
    if (patch) _mm512_store_epi64(tbits, bits);
    _mm512_mask_storeu_epi64(reinterpret_cast<long long*>(out) + i, lanes,
                             res);
    while (patch) {
      const unsigned lane = static_cast<unsigned>(__builtin_ctz(patch));
      out[i + lane] = fpcore::decode_one(m, tbits[lane]);
      patch = static_cast<__mmask8>(patch & (patch - 1));
    }
  }
}

#elif VCGRA_SIMD_NEON

// NEON port: the same transliteration at 2 encodings per uint64x2_t.
// Predicates are all-ones-per-lane uint64x2_t vectors (NEON has no mask
// registers); variable shifts go through USHL, whose signed-negative
// counts shift right and whose >=64 counts produce 0, matching the
// AVX-512 srlv/sllv semantics the x86 port relies on. The 64-bit
// significand product rides the 32x32->64 vmull_u32, which caps the
// vector multipliers at wf <= 31 (wider fractions fall back whole-call,
// like the x86 port's vpmullq cap at 2wf+2 <= 64). There is no 64-bit
// lane CLZ, so normalization counts leading zeros per lane through the
// scalar builtin — still branchless in the rounding arithmetic itself.

bool available() { return true; }  // AdvSIMD is architecturally mandatory

namespace {

/// vmull_u32 carries the wf+1-bit significands only while they fit a
/// 32-bit source lane. Wider fractions fall back to the scalar loop
/// whole-call.
bool lanes_fit(const Fmt& m) { return m.wf <= 31; }

inline uint64x2_t v_not(uint64x2_t k) {
  return veorq_u64(k, vdupq_n_u64(~std::uint64_t{0}));
}
/// Logical shifts by a runtime scalar count (USHL, negative = right).
inline uint64x2_t v_srl(uint64x2_t a, int k) {
  return vshlq_u64(a, vdupq_n_s64(-static_cast<std::int64_t>(k)));
}
inline uint64x2_t v_sll(uint64x2_t a, int k) {
  return vshlq_u64(a, vdupq_n_s64(static_cast<std::int64_t>(k)));
}
/// Per-lane variable logical shifts; counts are small non-negative u64.
inline uint64x2_t v_srlv(uint64x2_t a, uint64x2_t k) {
  return vshlq_u64(a, vnegq_s64(vreinterpretq_s64_u64(k)));
}
inline uint64x2_t v_sllv(uint64x2_t a, uint64x2_t k) {
  return vshlq_u64(a, vreinterpretq_s64_u64(k));
}
/// k ? v : u — argument order matches _mm512_mask_blend_epi64(k, u, v),
/// so the ported expressions read identically to the x86 section.
inline uint64x2_t v_blend(uint64x2_t k, uint64x2_t u, uint64x2_t v) {
  return vbslq_u64(k, v, u);
}
inline uint64x2_t v_maskz(uint64x2_t k, uint64x2_t v) {
  return vandq_u64(k, v);
}
/// Unsigned per-lane min (no 64-bit vmin on NEON).
inline uint64x2_t v_min(uint64x2_t a, uint64x2_t b) {
  return vbslq_u64(vcgtq_u64(a, b), b, a);
}
/// 64x64 significand product via vmull_u32; valid under lanes_fit.
inline uint64x2_t v_mul64(uint64x2_t a, uint64x2_t b) {
  return vmull_u32(vmovn_u64(a), vmovn_u64(b));
}
/// Leading-zero count per lane; 64 on zero, matching vplzcntq.
inline uint64x2_t v_lzcnt(uint64x2_t a) {
  u64 t[2];
  vst1q_u64(t, a);
  t[0] = t[0] ? static_cast<u64>(__builtin_clzll(t[0])) : 64;
  t[1] = t[1] ? static_cast<u64>(__builtin_clzll(t[1])) : 64;
  return vld1q_u64(t);
}

struct VStage {
  uint64x2_t bits;      // result encodings (valid on normal-operand lanes)
  uint64x2_t res_norm;  // ... of those, lanes whose result class is normal
};

/// Shared round-and-pack tail of both vector multipliers; mirrors
/// fpcore::mul_pack exactly (see the x86 v_mul_pack).
inline VStage v_mul_pack(const Fmt& m, uint64x2_t sign, uint64x2_t exp_base,
                         uint64x2_t product) {
  const uint64x2_t frac_mask = vdupq_n_u64(m.frac_mask);
  const uint64x2_t hidden = vdupq_n_u64(m.hidden);
  const uint64x2_t one = vdupq_n_u64(1);

  // top = product in [2,4); guard bit sits at wf-1+top.
  const uint64x2_t top = vandq_u64(v_srl(product, 2 * m.wf + 1), one);
  const uint64x2_t sh =
      vaddq_u64(vdupq_n_u64(static_cast<u64>(m.wf - 1)), top);
  const uint64x2_t frac_pre =
      vandq_u64(v_srlv(product, vaddq_u64(sh, one)), frac_mask);
  const uint64x2_t guard = vandq_u64(v_srlv(product, sh), one);
  const uint64x2_t below = vsubq_u64(v_sllv(one, sh), one);
  const uint64x2_t sticky = vandq_u64(vtstq_u64(product, below), one);
  const uint64x2_t round_up =
      vandq_u64(guard, vorrq_u64(sticky, vandq_u64(frac_pre, one)));
  uint64x2_t mant = vaddq_u64(vorrq_u64(hidden, frac_pre), round_up);
  const uint64x2_t exp_round = v_srl(mant, m.wf + 1);
  mant = v_srlv(mant, exp_round);

  uint64x2_t exponent = vaddq_u64(exp_base, vaddq_u64(top, exp_round));
  const uint64x2_t sign_shifted = v_sll(sign, m.shift);
  const uint64x2_t under = vcltzq_s64(vreinterpretq_s64_u64(exponent));
  const uint64x2_t over =
      vcgtq_s64(vreinterpretq_s64_u64(exponent),
                vdupq_n_s64(static_cast<std::int64_t>(m.exp_mask)));

  uint64x2_t res = vorrq_u64(
      vorrq_u64(v_sll(vorrq_u64(sign, vdupq_n_u64(2)), m.shift),
                v_sll(exponent, m.wf)),
      vandq_u64(mant, frac_mask));
  res = v_blend(under, res, sign_shifted);  // flush to zero
  res = v_blend(over, res, vorrq_u64(sign_shifted, vdupq_n_u64(m.inf_base)));

  VStage out;
  out.bits = res;
  out.res_norm = v_not(vorrq_u64(under, over));
  return out;
}

/// Vector fp_mul by a broadcast normal coefficient. Valid only on lanes
/// whose `a` class is normal; the caller patches the rest.
inline VStage v_mul_coeff(const Fmt& m, uint64x2_t va, const CoeffMul& c) {
  const uint64x2_t frac_mask = vdupq_n_u64(m.frac_mask);
  const uint64x2_t hidden = vdupq_n_u64(m.hidden);
  const uint64x2_t ma = vorrq_u64(vandq_u64(va, frac_mask), hidden);
  const uint64x2_t product =
      vmull_u32(vmovn_u64(ma), vdup_n_u32(static_cast<std::uint32_t>(c.mant)));
  const uint64x2_t exp_a =
      vandq_u64(v_srl(va, m.wf), vdupq_n_u64(m.exp_mask));
  const uint64x2_t exp_base = vaddq_u64(
      exp_a, vdupq_n_u64(static_cast<u64>(
                 static_cast<std::int64_t>(c.exponent) - m.bias)));
  const uint64x2_t sign = veorq_u64(
      vandq_u64(v_srl(va, m.shift), vdupq_n_u64(1)), vdupq_n_u64(c.sign));
  return v_mul_pack(m, sign, exp_base, product);
}

/// Vector fp_mul of two streams. Valid only on lanes where both classes
/// are normal.
inline VStage v_mul(const Fmt& m, uint64x2_t va, uint64x2_t vb) {
  const uint64x2_t frac_mask = vdupq_n_u64(m.frac_mask);
  const uint64x2_t hidden = vdupq_n_u64(m.hidden);
  const uint64x2_t ma = vorrq_u64(vandq_u64(va, frac_mask), hidden);
  const uint64x2_t mb = vorrq_u64(vandq_u64(vb, frac_mask), hidden);
  const uint64x2_t product = v_mul64(ma, mb);
  const uint64x2_t exp_mask_v = vdupq_n_u64(m.exp_mask);
  const uint64x2_t exp_a = vandq_u64(v_srl(va, m.wf), exp_mask_v);
  const uint64x2_t exp_b = vandq_u64(v_srl(vb, m.wf), exp_mask_v);
  const uint64x2_t exp_base =
      vaddq_u64(vaddq_u64(exp_a, exp_b),
                vdupq_n_u64(static_cast<u64>(-m.bias)));
  const uint64x2_t sign = vandq_u64(
      veorq_u64(v_srl(va, m.shift), v_srl(vb, m.shift)), vdupq_n_u64(1));
  return v_mul_pack(m, sign, exp_base, product);
}

/// Vector fp_add. Valid only on lanes where both classes are normal;
/// exact cancellation and exponent clamps are handled with blends.
inline uint64x2_t v_add(const Fmt& m, uint64x2_t va, uint64x2_t vb) {
  const uint64x2_t frac_mask = vdupq_n_u64(m.frac_mask);
  const uint64x2_t exp_mask_v = vdupq_n_u64(m.exp_mask);
  const uint64x2_t hidden = vdupq_n_u64(m.hidden);
  const uint64x2_t one = vdupq_n_u64(1);

  // Order by magnitude: X = larger (exp,frac); ties keep a.
  const uint64x2_t frac_a = vandq_u64(va, frac_mask);
  const uint64x2_t frac_b = vandq_u64(vb, frac_mask);
  const uint64x2_t exp_a = vandq_u64(v_srl(va, m.wf), exp_mask_v);
  const uint64x2_t exp_b = vandq_u64(v_srl(vb, m.wf), exp_mask_v);
  const uint64x2_t mag_a = vorrq_u64(v_sll(exp_a, m.wf), frac_a);
  const uint64x2_t mag_b = vorrq_u64(v_sll(exp_b, m.wf), frac_b);
  const uint64x2_t a_big = vcgeq_u64(mag_a, mag_b);
  const uint64x2_t x = v_blend(a_big, vb, va);
  const uint64x2_t y = v_blend(a_big, va, vb);
  const uint64x2_t exp_x = v_blend(a_big, exp_b, exp_a);
  const uint64x2_t exp_y = v_blend(a_big, exp_a, exp_b);

  // Alignment shift with the scalar core's width cap.
  uint64x2_t d = vsubq_u64(exp_x, exp_y);
  d = v_min(d, vdupq_n_u64(static_cast<u64>(m.wf + 4)));
  const uint64x2_t mx =
      v_sll(vorrq_u64(vandq_u64(x, frac_mask), hidden), 3);
  const uint64x2_t my_full =
      v_sll(vorrq_u64(vandq_u64(y, frac_mask), hidden), 3);
  uint64x2_t my = v_srlv(my_full, d);
  const uint64x2_t sticky_shift = v_not(vceqq_u64(v_sllv(my, d), my_full));
  my = vorrq_u64(my, vandq_u64(sticky_shift, one));

  // s = eff_sub ? mx - my : mx + my via conditional negation.
  const uint64x2_t sign_x = vandq_u64(v_srl(x, m.shift), one);
  const uint64x2_t sign_y = vandq_u64(v_srl(y, m.shift), one);
  const uint64x2_t eff = veorq_u64(sign_x, sign_y);
  const uint64x2_t neg = vsubq_u64(vdupq_n_u64(0), eff);
  const uint64x2_t s =
      vaddq_u64(vaddq_u64(mx, veorq_u64(my, neg)), eff);
  const uint64x2_t cancel = vceqq_u64(s, vdupq_n_u64(0));

  // Normalize: leading 1 to bit wf+3 (lzcnt of 0 is 64 — cancel lanes
  // are blended out below, their garbage never escapes).
  const int t = m.wf + 3;
  const uint64x2_t k = vsubq_u64(vdupq_n_u64(63), v_lzcnt(s));
  const uint64x2_t carry =
      vcgtq_s64(vreinterpretq_s64_u64(k), vdupq_n_s64(t));
  const uint64x2_t s_r = vorrq_u64(v_srl(s, 1), vandq_u64(s, one));
  const uint64x2_t shl = vandq_u64(
      vsubq_u64(vdupq_n_u64(static_cast<u64>(t)), k), vdupq_n_u64(63));
  const uint64x2_t s_l = v_sllv(s, shl);
  const uint64x2_t s_norm = v_blend(carry, s_l, s_r);

  const uint64x2_t frac_pre = vandq_u64(v_srl(s_norm, 3), frac_mask);
  const uint64x2_t guard = vandq_u64(v_srl(s_norm, 2), one);
  const uint64x2_t sticky = vandq_u64(vtstq_u64(s_norm, vdupq_n_u64(3)), one);
  const uint64x2_t round_up =
      vandq_u64(guard, vorrq_u64(sticky, vandq_u64(frac_pre, one)));
  uint64x2_t mant = vaddq_u64(vorrq_u64(hidden, frac_pre), round_up);
  const uint64x2_t mant_carry = v_srl(mant, m.wf + 1);
  mant = v_srlv(mant, mant_carry);

  uint64x2_t exponent =
      vaddq_u64(exp_x, vsubq_u64(k, vdupq_n_u64(static_cast<u64>(t))));
  exponent = vaddq_u64(exponent, mant_carry);

  const uint64x2_t sign_shifted = v_sll(sign_x, m.shift);
  const uint64x2_t under = vcltzq_s64(vreinterpretq_s64_u64(exponent));
  const uint64x2_t over =
      vcgtq_s64(vreinterpretq_s64_u64(exponent),
                vreinterpretq_s64_u64(exp_mask_v));

  uint64x2_t res = vorrq_u64(
      vorrq_u64(v_sll(vorrq_u64(sign_x, vdupq_n_u64(2)), m.shift),
                v_sll(exponent, m.wf)),
      vandq_u64(mant, frac_mask));
  res = v_blend(under, res, sign_shifted);
  res = v_blend(over, res,
                vorrq_u64(sign_shifted, vdupq_n_u64(m.inf_base)));
  res = v_maskz(v_not(cancel), res);  // +0 on cancel
  return res;
}

/// Class-of-lane == normal predicate.
inline uint64x2_t v_normal(const Fmt& m, uint64x2_t v) {
  const uint64x2_t cls =
      vandq_u64(v_srl(v, m.shift + 1), vdupq_n_u64(3));
  return vceqq_u64(cls, vdupq_n_u64(1));
}

}  // namespace

void mul_coeff_n(const Fmt& m, const std::uint64_t* a, u64 coeff,
                 std::uint64_t* out, std::size_t n) {
  const CoeffMul c(m, coeff);
  if (!lanes_fit(m) || c.cls != 1) {  // special coefficient: scalar ladder
    for (std::size_t i = 0; i < n; ++i) out[i] = mul_one_coeff(m, a[i], c);
    return;
  }
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t va = vld1q_u64(a + i);
    const VStage stage = v_mul_coeff(m, va, c);
    // `out` may alias `a`: snapshot the loaded lanes before storing so
    // the special-class patch reads originals, not the vector result.
    const uint64x2_t patch = v_not(v_normal(m, va));
    u64 ta[2];
    vst1q_u64(ta, va);
    vst1q_u64(out + i, stage.bits);
    if (vgetq_lane_u64(patch, 0)) out[i] = mul_one_coeff(m, ta[0], c);
    if (vgetq_lane_u64(patch, 1)) out[i + 1] = mul_one_coeff(m, ta[1], c);
  }
  for (; i < n; ++i) out[i] = mul_one_coeff(m, a[i], c);
}

void mul_n(const Fmt& m, const std::uint64_t* a, const std::uint64_t* b,
           std::uint64_t* out, std::size_t n) {
  if (!lanes_fit(m)) {
    for (std::size_t i = 0; i < n; ++i) out[i] = mul_one(m, a[i], b[i]);
    return;
  }
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t va = vld1q_u64(a + i);
    const uint64x2_t vb = vld1q_u64(b + i);
    const VStage stage = v_mul(m, va, vb);
    // `out` may alias either input: patch from register snapshots.
    const uint64x2_t patch =
        v_not(vandq_u64(v_normal(m, va), v_normal(m, vb)));
    u64 ta[2], tb[2];
    vst1q_u64(ta, va);
    vst1q_u64(tb, vb);
    vst1q_u64(out + i, stage.bits);
    if (vgetq_lane_u64(patch, 0)) out[i] = mul_one(m, ta[0], tb[0]);
    if (vgetq_lane_u64(patch, 1)) out[i + 1] = mul_one(m, ta[1], tb[1]);
  }
  for (; i < n; ++i) out[i] = mul_one(m, a[i], b[i]);
}

void add_xor_n(const Fmt& m, const std::uint64_t* a, const std::uint64_t* b,
               u64 b_xor, std::uint64_t* out, std::size_t n) {
  const uint64x2_t vxor = vdupq_n_u64(b_xor);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t va = vld1q_u64(a + i);
    const uint64x2_t vb = veorq_u64(vld1q_u64(b + i), vxor);
    const uint64x2_t sum = v_add(m, va, vb);
    // `out` may alias either input: patch from register snapshots (vb
    // already carries b_xor, so the scalar redo applies none).
    const uint64x2_t patch =
        v_not(vandq_u64(v_normal(m, va), v_normal(m, vb)));
    u64 ta[2], tb[2];
    vst1q_u64(ta, va);
    vst1q_u64(tb, vb);
    vst1q_u64(out + i, sum);
    if (vgetq_lane_u64(patch, 0)) out[i] = add_one(m, ta[0], tb[0]);
    if (vgetq_lane_u64(patch, 1)) out[i + 1] = add_one(m, ta[1], tb[1]);
  }
  for (; i < n; ++i) out[i] = add_one(m, a[i], b[i] ^ b_xor);
}

void axpy_n(const Fmt& m, const std::uint64_t* a, const std::uint64_t* x,
            u64 coeff, u64 mul_xor, std::uint64_t* out, std::size_t n) {
  const CoeffMul c(m, coeff);
  if (!lanes_fit(m) || c.cls != 1) {
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = add_one(m, a[i], mul_one_coeff(m, x[i], c) ^ mul_xor);
    }
    return;
  }
  const uint64x2_t vxor = vdupq_n_u64(mul_xor);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t va = vld1q_u64(a + i);
    const uint64x2_t vx = vld1q_u64(x + i);
    const VStage mul = v_mul_coeff(m, vx, c);
    const uint64x2_t prod = veorq_u64(mul.bits, vxor);
    const uint64x2_t sum = v_add(m, va, prod);
    // Patch: special a/x operands, or a mul that clamped to zero/inf
    // (the vector add assumes normal operands). `out` may alias an
    // input, so snapshot the loaded lanes before storing.
    const uint64x2_t ok = vandq_u64(
        vandq_u64(v_normal(m, va), v_normal(m, vx)), mul.res_norm);
    const uint64x2_t patch = v_not(ok);
    u64 ta[2], tx[2];
    vst1q_u64(ta, va);
    vst1q_u64(tx, vx);
    vst1q_u64(out + i, sum);
    if (vgetq_lane_u64(patch, 0)) {
      out[i] = add_one(m, ta[0], mul_one_coeff(m, tx[0], c) ^ mul_xor);
    }
    if (vgetq_lane_u64(patch, 1)) {
      out[i + 1] = add_one(m, ta[1], mul_one_coeff(m, tx[1], c) ^ mul_xor);
    }
  }
  for (; i < n; ++i) {
    out[i] = add_one(m, a[i], mul_one_coeff(m, x[i], c) ^ mul_xor);
  }
}

void xpay_n(const Fmt& m, const std::uint64_t* x, u64 coeff,
            const std::uint64_t* b, u64 b_xor, std::uint64_t* out,
            std::size_t n) {
  const CoeffMul c(m, coeff);
  if (!lanes_fit(m) || c.cls != 1) {
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = add_one(m, mul_one_coeff(m, x[i], c), b[i] ^ b_xor);
    }
    return;
  }
  const uint64x2_t vxor = vdupq_n_u64(b_xor);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t vx = vld1q_u64(x + i);
    const uint64x2_t vb = veorq_u64(vld1q_u64(b + i), vxor);
    const VStage mul = v_mul_coeff(m, vx, c);
    const uint64x2_t sum = v_add(m, mul.bits, vb);
    // `out` may alias an input: snapshot before storing (vb already
    // carries b_xor, so the scalar redo applies none).
    const uint64x2_t ok = vandq_u64(
        vandq_u64(v_normal(m, vx), v_normal(m, vb)), mul.res_norm);
    const uint64x2_t patch = v_not(ok);
    u64 tx[2], tb[2];
    vst1q_u64(tx, vx);
    vst1q_u64(tb, vb);
    vst1q_u64(out + i, sum);
    if (vgetq_lane_u64(patch, 0)) {
      out[i] = add_one(m, mul_one_coeff(m, tx[0], c), tb[0]);
    }
    if (vgetq_lane_u64(patch, 1)) {
      out[i + 1] = add_one(m, mul_one_coeff(m, tx[1], c), tb[1]);
    }
  }
  for (; i < n; ++i) {
    out[i] = add_one(m, mul_one_coeff(m, x[i], c), b[i] ^ b_xor);
  }
}

void from_double_n(const Fmt& m, const double* in, std::uint64_t* out,
                   std::size_t n) {
  if (m.wf >= 52) {  // no fraction bits to drop: scalar path
    for (std::size_t i = 0; i < n; ++i) out[i] = fpcore::encode_one(m, in[i]);
    return;
  }
  const int drop = 52 - m.wf;
  const uint64x2_t one = vdupq_n_u64(1);
  const uint64x2_t mask52 = vdupq_n_u64((u64{1} << 52) - 1);
  const uint64x2_t frac_mask = vdupq_n_u64(m.frac_mask);
  const uint64x2_t exp_mask_v = vdupq_n_u64(m.exp_mask);
  const uint64x2_t hidden = vdupq_n_u64(m.hidden);
  const uint64x2_t sticky_below =
      vdupq_n_u64((u64{1} << (drop - 1)) - 1);

  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t d =
        vld1q_u64(reinterpret_cast<const std::uint64_t*>(in + i));
    const uint64x2_t sign = vshrq_n_u64(d, 63);
    const uint64x2_t dexp =
        vandq_u64(vshrq_n_u64(d, 52), vdupq_n_u64(0x7ff));
    const uint64x2_t dfrac = vandq_u64(d, mask52);
    const uint64x2_t exp_all1 = vceqq_u64(dexp, vdupq_n_u64(0x7ff));
    const uint64x2_t exp_zero = vceqq_u64(dexp, vdupq_n_u64(0));
    const uint64x2_t frac_zero = vceqq_u64(dfrac, vdupq_n_u64(0));
    const uint64x2_t denormal = vandq_u64(exp_zero, v_not(frac_zero));

    // Normal-double path (RNE from 52 to wf fraction bits).
    uint64x2_t frac = v_srl(dfrac, drop);
    const uint64x2_t guard = vandq_u64(v_srl(dfrac, drop - 1), one);
    const uint64x2_t sticky =
        vandq_u64(vtstq_u64(dfrac, sticky_below), one);
    const uint64x2_t round_up =
        vandq_u64(guard, vorrq_u64(sticky, vandq_u64(frac, one)));
    frac = vaddq_u64(frac, round_up);
    const uint64x2_t frac_carry = vceqq_u64(frac, hidden);
    frac = v_maskz(v_not(frac_carry), frac);
    // exponent = (e2 - 1) + bias = dexp - 1023 + bias (+ rounding carry).
    uint64x2_t exponent = vaddq_u64(
        dexp, vdupq_n_u64(static_cast<u64>(m.bias - 1023)));
    exponent = vaddq_u64(exponent, vandq_u64(frac_carry, one));

    const uint64x2_t sign_shifted = v_sll(sign, m.shift);
    const uint64x2_t under = vcltzq_s64(vreinterpretq_s64_u64(exponent));
    const uint64x2_t over =
        vcgtq_s64(vreinterpretq_s64_u64(exponent),
                  vreinterpretq_s64_u64(exp_mask_v));

    const uint64x2_t inf_bits =
        vorrq_u64(sign_shifted, vdupq_n_u64(m.inf_base));
    uint64x2_t res = vorrq_u64(
        vorrq_u64(v_sll(vorrq_u64(sign, vdupq_n_u64(2)), m.shift),
                  v_sll(exponent, m.wf)),
        vandq_u64(frac, frac_mask));
    res = v_blend(under, res, sign_shifted);
    res = v_blend(over, res, inf_bits);
    // Specials: ±0, ±inf, NaN.
    res = v_blend(vandq_u64(exp_zero, frac_zero), res, sign_shifted);
    res = v_blend(vandq_u64(exp_all1, frac_zero), res, inf_bits);
    res = v_blend(vandq_u64(exp_all1, v_not(frac_zero)), res,
                  vdupq_n_u64(m.nan_bits));
    vst1q_u64(out + i, res);

    // Denormal doubles renormalize through the scalar encoder (rare).
    if (vgetq_lane_u64(denormal, 0)) out[i] = fpcore::encode_one(m, in[i]);
    if (vgetq_lane_u64(denormal, 1)) {
      out[i + 1] = fpcore::encode_one(m, in[i + 1]);
    }
  }
  for (; i < n; ++i) out[i] = fpcore::encode_one(m, in[i]);
}

void to_double_n(const Fmt& m, const std::uint64_t* in, double* out,
                 std::size_t n) {
  if (m.wf > 52) {  // fraction wider than a double's: scalar whole-call
    for (std::size_t i = 0; i < n; ++i) out[i] = fpcore::decode_one(m, in[i]);
    return;
  }
  const uint64x2_t one = vdupq_n_u64(1);
  const uint64x2_t three = vdupq_n_u64(3);
  const uint64x2_t exp_mask_v = vdupq_n_u64(m.exp_mask);
  const uint64x2_t frac_mask = vdupq_n_u64(m.frac_mask);
  // dexp = (exponent - bias) + 1023, folded into one constant add.
  const uint64x2_t rebias =
      vdupq_n_u64(static_cast<u64>(1023 - m.bias));

  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t bits = vld1q_u64(in + i);
    const uint64x2_t cls = vandq_u64(v_srl(bits, m.shift + 1), three);
    const uint64x2_t sign = vandq_u64(v_srl(bits, m.shift), one);
    const uint64x2_t exponent = vandq_u64(v_srl(bits, m.wf), exp_mask_v);
    const uint64x2_t fraction = vandq_u64(bits, frac_mask);
    const uint64x2_t dexp = vaddq_u64(exponent, rebias);

    // decode_one's exact normal-range assembly: the fraction widens
    // losslessly into a double's 52 bits.
    const uint64x2_t res = vorrq_u64(
        vorrq_u64(vshlq_n_u64(sign, 63), v_sll(dexp, 52)),
        v_sll(fraction, 52 - m.wf));

    const uint64x2_t normal = vceqq_u64(cls, one);
    const uint64x2_t in_range = vandq_u64(
        vcgtzq_s64(vreinterpretq_s64_u64(dexp)),
        vcltq_s64(vreinterpretq_s64_u64(dexp), vdupq_n_s64(2047)));
    // Specials and out-of-double-range exponents redo through the scalar
    // decoder; snapshot before the store in case `out` overlays `in`
    // (the raw-bits boundary decodes in place).
    const uint64x2_t patch = v_not(vandq_u64(normal, in_range));
    u64 tbits[2];
    vst1q_u64(tbits, bits);
    vst1q_u64(reinterpret_cast<std::uint64_t*>(out) + i, res);
    if (vgetq_lane_u64(patch, 0)) out[i] = fpcore::decode_one(m, tbits[0]);
    if (vgetq_lane_u64(patch, 1)) {
      out[i + 1] = fpcore::decode_one(m, tbits[1]);
    }
  }
  for (; i < n; ++i) out[i] = fpcore::decode_one(m, in[i]);
}

#else  // portable stubs; available() keeps them unreachable.

bool available() { return false; }

void mul_n(const Fmt& m, const std::uint64_t* a, const std::uint64_t* b,
           std::uint64_t* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = mul_one(m, a[i], b[i]);
}
void mul_coeff_n(const Fmt& m, const std::uint64_t* a, u64 coeff,
                 std::uint64_t* out, std::size_t n) {
  const CoeffMul c(m, coeff);
  for (std::size_t i = 0; i < n; ++i) out[i] = mul_one_coeff(m, a[i], c);
}
void add_xor_n(const Fmt& m, const std::uint64_t* a, const std::uint64_t* b,
               u64 b_xor, std::uint64_t* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = add_one(m, a[i], b[i] ^ b_xor);
}
void axpy_n(const Fmt& m, const std::uint64_t* a, const std::uint64_t* x,
            u64 coeff, u64 mul_xor, std::uint64_t* out, std::size_t n) {
  const CoeffMul c(m, coeff);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = add_one(m, a[i], mul_one_coeff(m, x[i], c) ^ mul_xor);
  }
}
void xpay_n(const Fmt& m, const std::uint64_t* x, u64 coeff,
            const std::uint64_t* b, u64 b_xor, std::uint64_t* out,
            std::size_t n) {
  const CoeffMul c(m, coeff);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = add_one(m, mul_one_coeff(m, x[i], c), b[i] ^ b_xor);
  }
}
void from_double_n(const Fmt& m, const double* in, std::uint64_t* out,
                   std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = fpcore::encode_one(m, in[i]);
}
void to_double_n(const Fmt& m, const std::uint64_t* in, double* out,
                 std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = fpcore::decode_one(m, in[i]);
}

#endif  // VCGRA_SIMD_X86

}  // namespace vcgra::softfloat::simd
