// AVX-512 lanes for the batch FloPoCo kernels.
//
// Every arithmetic step below is the vector transliteration of the
// branchless scalar core in fp_core.hpp (itself a bit-for-bit
// translation of fpformat.cpp): 8 encodings per __m512i, format
// constants broadcast once per call, data-dependent control flow turned
// into mask blends. Lanes the vector path cannot carry — a non-normal
// operand class, a denormal double at the encode boundary — are
// recomputed through the scalar core and merged, so the output is
// bit-identical to the portable loops for every input (asserted by the
// batch-kernel fuzz in test_exec_plan).
//
// Compiled with per-function target attributes, so the object file links
// into a baseline x86-64 build; available() gates execution at runtime.
#include "batch_simd.hpp"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define VCGRA_SIMD_X86 1
#include <immintrin.h>
// GCC's avx512 headers trip -Wmaybe-uninitialized on the _mm512_maskz_*
// idiom (the masked-off operand is intentionally undefined).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
#else
#define VCGRA_SIMD_X86 0
#endif

namespace vcgra::softfloat::simd {

using fpcore::add_one;
using fpcore::CoeffMul;
using fpcore::Fmt;
using fpcore::mul_one;
using fpcore::mul_one_coeff;
using u64 = std::uint64_t;

#if VCGRA_SIMD_X86

#define VCGRA_TARGET __attribute__((target("avx512f,avx512cd,avx512dq")))

bool available() {
  static const bool ok = __builtin_cpu_supports("avx512f") &&
                         __builtin_cpu_supports("avx512cd") &&
                         __builtin_cpu_supports("avx512dq");
  return ok;
}

namespace {

/// The 64-bit significand-product trick needs 2wf+2 bits; vpmullq needs
/// the same. Wider fractions fall back to the scalar loop whole-call.
bool lanes_fit(const Fmt& m) { return 2 * m.wf + 2 <= 64; }

struct VStage {
  __m512i bits;      // result encodings (valid on `normal_in` lanes)
  __mmask8 res_norm; // ... of those, lanes whose result class is normal
};

/// Shared round-and-pack tail of both vector multipliers: `product` is
/// the lane-wise significand product, `exp_base` the biased operand
/// exponent sum already carrying -bias, `sign` the 0/1 result signs.
/// Mirrors fpcore::mul_pack exactly.
VCGRA_TARGET inline VStage v_mul_pack(const Fmt& m, __m512i sign,
                                      __m512i exp_base, __m512i product) {
  const __m512i frac_mask = _mm512_set1_epi64(static_cast<long long>(m.frac_mask));
  const __m512i hidden = _mm512_set1_epi64(static_cast<long long>(m.hidden));
  const __m512i one = _mm512_set1_epi64(1);

  // top = product in [2,4); guard bit sits at wf-1+top.
  const __m512i top =
      _mm512_and_epi64(_mm512_srli_epi64(product, 2 * m.wf + 1), one);
  const __m512i sh = _mm512_add_epi64(_mm512_set1_epi64(m.wf - 1), top);
  const __m512i frac_pre = _mm512_and_epi64(
      _mm512_srlv_epi64(product, _mm512_add_epi64(sh, one)), frac_mask);
  const __m512i guard = _mm512_and_epi64(_mm512_srlv_epi64(product, sh), one);
  const __m512i below = _mm512_sub_epi64(_mm512_sllv_epi64(one, sh), one);
  const __mmask8 sticky_k = _mm512_test_epi64_mask(product, below);
  const __m512i sticky = _mm512_maskz_mov_epi64(sticky_k, one);
  const __m512i round_up = _mm512_and_epi64(
      guard, _mm512_or_epi64(sticky, _mm512_and_epi64(frac_pre, one)));
  __m512i mant = _mm512_add_epi64(_mm512_or_epi64(hidden, frac_pre), round_up);
  const __m512i exp_round = _mm512_srli_epi64(mant, m.wf + 1);
  mant = _mm512_srlv_epi64(mant, exp_round);

  __m512i exponent =
      _mm512_add_epi64(exp_base, _mm512_add_epi64(top, exp_round));
  const __m512i sign_shifted = _mm512_slli_epi64(sign, m.shift);
  const __mmask8 under =
      _mm512_cmplt_epi64_mask(exponent, _mm512_setzero_si512());
  const __mmask8 over = _mm512_cmpgt_epi64_mask(
      exponent, _mm512_set1_epi64(static_cast<long long>(m.exp_mask)));

  __m512i res = _mm512_or_epi64(
      _mm512_or_epi64(
          _mm512_slli_epi64(_mm512_or_epi64(sign, _mm512_set1_epi64(2)),
                            m.shift),
          _mm512_slli_epi64(exponent, m.wf)),
      _mm512_and_epi64(mant, frac_mask));
  res = _mm512_mask_mov_epi64(res, under, sign_shifted);  // flush to zero
  res = _mm512_mask_mov_epi64(
      res, over,
      _mm512_or_epi64(sign_shifted,
                      _mm512_set1_epi64(static_cast<long long>(m.inf_base))));

  VStage out;
  out.bits = res;
  out.res_norm = _knot_mask8(_kor_mask8(under, over));
  return out;
}

/// Vector fp_mul by a broadcast normal coefficient. Valid only on lanes
/// whose `a` class is normal; the caller patches the rest.
VCGRA_TARGET inline VStage v_mul_coeff(const Fmt& m, __m512i va,
                                       const CoeffMul& c) {
  const __m512i frac_mask = _mm512_set1_epi64(static_cast<long long>(m.frac_mask));
  const __m512i hidden = _mm512_set1_epi64(static_cast<long long>(m.hidden));
  const __m512i ma = _mm512_or_epi64(_mm512_and_epi64(va, frac_mask), hidden);
  const __m512i product =
      _mm512_mullo_epi64(ma, _mm512_set1_epi64(static_cast<long long>(c.mant)));
  const __m512i exp_a = _mm512_and_epi64(
      _mm512_srli_epi64(va, m.wf),
      _mm512_set1_epi64(static_cast<long long>(m.exp_mask)));
  const __m512i exp_base = _mm512_add_epi64(
      exp_a, _mm512_set1_epi64(static_cast<long long>(
                 static_cast<std::int64_t>(c.exponent) - m.bias)));
  const __m512i sign = _mm512_xor_epi64(
      _mm512_and_epi64(_mm512_srli_epi64(va, m.shift),
                       _mm512_set1_epi64(1)),
      _mm512_set1_epi64(static_cast<long long>(c.sign)));
  return v_mul_pack(m, sign, exp_base, product);
}

/// Vector fp_mul of two streams. Valid only on lanes where both classes
/// are normal.
VCGRA_TARGET inline VStage v_mul(const Fmt& m, __m512i va, __m512i vb) {
  const __m512i frac_mask = _mm512_set1_epi64(static_cast<long long>(m.frac_mask));
  const __m512i hidden = _mm512_set1_epi64(static_cast<long long>(m.hidden));
  const __m512i ma = _mm512_or_epi64(_mm512_and_epi64(va, frac_mask), hidden);
  const __m512i mb = _mm512_or_epi64(_mm512_and_epi64(vb, frac_mask), hidden);
  const __m512i product = _mm512_mullo_epi64(ma, mb);
  const __m512i exp_mask_v =
      _mm512_set1_epi64(static_cast<long long>(m.exp_mask));
  const __m512i exp_a =
      _mm512_and_epi64(_mm512_srli_epi64(va, m.wf), exp_mask_v);
  const __m512i exp_b =
      _mm512_and_epi64(_mm512_srli_epi64(vb, m.wf), exp_mask_v);
  const __m512i exp_base = _mm512_add_epi64(
      _mm512_add_epi64(exp_a, exp_b),
      _mm512_set1_epi64(static_cast<long long>(-m.bias)));
  const __m512i sign = _mm512_and_epi64(
      _mm512_xor_epi64(_mm512_srli_epi64(va, m.shift),
                       _mm512_srli_epi64(vb, m.shift)),
      _mm512_set1_epi64(1));
  return v_mul_pack(m, sign, exp_base, product);
}

/// Vector fp_add. Valid only on lanes where both classes are normal;
/// exact cancellation and exponent clamps are handled with blends.
VCGRA_TARGET inline __m512i v_add(const Fmt& m, __m512i va, __m512i vb) {
  const __m512i frac_mask = _mm512_set1_epi64(static_cast<long long>(m.frac_mask));
  const __m512i exp_mask_v = _mm512_set1_epi64(static_cast<long long>(m.exp_mask));
  const __m512i hidden = _mm512_set1_epi64(static_cast<long long>(m.hidden));
  const __m512i one = _mm512_set1_epi64(1);

  // Order by magnitude: X = larger (exp,frac); ties keep a.
  const __m512i frac_a = _mm512_and_epi64(va, frac_mask);
  const __m512i frac_b = _mm512_and_epi64(vb, frac_mask);
  const __m512i exp_a = _mm512_and_epi64(_mm512_srli_epi64(va, m.wf), exp_mask_v);
  const __m512i exp_b = _mm512_and_epi64(_mm512_srli_epi64(vb, m.wf), exp_mask_v);
  const __m512i mag_a = _mm512_or_epi64(_mm512_slli_epi64(exp_a, m.wf), frac_a);
  const __m512i mag_b = _mm512_or_epi64(_mm512_slli_epi64(exp_b, m.wf), frac_b);
  const __mmask8 a_big = _mm512_cmpge_epu64_mask(mag_a, mag_b);
  // mask_blend(k, u, v) = k ? v : u.
  const __m512i x = _mm512_mask_blend_epi64(a_big, vb, va);
  const __m512i y = _mm512_mask_blend_epi64(a_big, va, vb);
  const __m512i exp_x = _mm512_mask_blend_epi64(a_big, exp_b, exp_a);
  const __m512i exp_y = _mm512_mask_blend_epi64(a_big, exp_a, exp_b);

  // Alignment shift with the scalar core's width cap.
  __m512i d = _mm512_sub_epi64(exp_x, exp_y);
  d = _mm512_min_epu64(d, _mm512_set1_epi64(m.wf + 4));
  const __m512i mx = _mm512_slli_epi64(
      _mm512_or_epi64(_mm512_and_epi64(x, frac_mask), hidden), 3);
  const __m512i my_full = _mm512_slli_epi64(
      _mm512_or_epi64(_mm512_and_epi64(y, frac_mask), hidden), 3);
  __m512i my = _mm512_srlv_epi64(my_full, d);
  const __mmask8 sticky_shift =
      _mm512_cmpneq_epi64_mask(_mm512_sllv_epi64(my, d), my_full);
  my = _mm512_mask_or_epi64(my, sticky_shift, my, one);

  // s = eff_sub ? mx - my : mx + my via conditional negation.
  const __m512i sign_x = _mm512_and_epi64(_mm512_srli_epi64(x, m.shift), one);
  const __m512i sign_y = _mm512_and_epi64(_mm512_srli_epi64(y, m.shift), one);
  const __m512i eff = _mm512_xor_epi64(sign_x, sign_y);
  const __m512i neg = _mm512_sub_epi64(_mm512_setzero_si512(), eff);
  const __m512i s = _mm512_add_epi64(
      _mm512_add_epi64(mx, _mm512_xor_epi64(my, neg)), eff);
  const __mmask8 cancel = _mm512_cmpeq_epi64_mask(s, _mm512_setzero_si512());

  // Normalize: leading 1 to bit wf+3 (lzcnt of 0 is 64 — cancel lanes
  // are blended out below, their garbage never escapes).
  const int t = m.wf + 3;
  const __m512i k =
      _mm512_sub_epi64(_mm512_set1_epi64(63), _mm512_lzcnt_epi64(s));
  const __mmask8 carry =
      _mm512_cmpgt_epi64_mask(k, _mm512_set1_epi64(t));
  const __m512i s_r = _mm512_or_epi64(_mm512_srli_epi64(s, 1),
                                      _mm512_and_epi64(s, one));
  const __m512i shl = _mm512_and_epi64(
      _mm512_sub_epi64(_mm512_set1_epi64(t), k), _mm512_set1_epi64(63));
  const __m512i s_l = _mm512_sllv_epi64(s, shl);
  const __m512i s_norm = _mm512_mask_blend_epi64(carry, s_l, s_r);

  const __m512i frac_pre =
      _mm512_and_epi64(_mm512_srli_epi64(s_norm, 3), frac_mask);
  const __m512i guard = _mm512_and_epi64(_mm512_srli_epi64(s_norm, 2), one);
  const __mmask8 sticky_k =
      _mm512_test_epi64_mask(s_norm, _mm512_set1_epi64(3));
  const __m512i sticky = _mm512_maskz_mov_epi64(sticky_k, one);
  const __m512i round_up = _mm512_and_epi64(
      guard, _mm512_or_epi64(sticky, _mm512_and_epi64(frac_pre, one)));
  __m512i mant = _mm512_add_epi64(_mm512_or_epi64(hidden, frac_pre), round_up);
  const __m512i mant_carry = _mm512_srli_epi64(mant, m.wf + 1);
  mant = _mm512_srlv_epi64(mant, mant_carry);

  __m512i exponent = _mm512_add_epi64(
      exp_x, _mm512_sub_epi64(k, _mm512_set1_epi64(t)));
  exponent = _mm512_add_epi64(exponent, mant_carry);

  const __m512i sign_shifted = _mm512_slli_epi64(sign_x, m.shift);
  const __mmask8 under =
      _mm512_cmplt_epi64_mask(exponent, _mm512_setzero_si512());
  const __mmask8 over = _mm512_cmpgt_epi64_mask(exponent, exp_mask_v);

  __m512i res = _mm512_or_epi64(
      _mm512_or_epi64(
          _mm512_slli_epi64(_mm512_or_epi64(sign_x, _mm512_set1_epi64(2)),
                            m.shift),
          _mm512_slli_epi64(exponent, m.wf)),
      _mm512_and_epi64(mant, frac_mask));
  res = _mm512_mask_mov_epi64(res, under, sign_shifted);
  res = _mm512_mask_mov_epi64(
      res, over,
      _mm512_or_epi64(sign_shifted,
                      _mm512_set1_epi64(static_cast<long long>(m.inf_base))));
  res = _mm512_maskz_mov_epi64(_knot_mask8(cancel), res);  // +0 on cancel
  return res;
}

/// Class-of-lane == normal mask.
VCGRA_TARGET inline __mmask8 v_normal(const Fmt& m, __m512i v) {
  const __m512i cls = _mm512_and_epi64(_mm512_srli_epi64(v, m.shift + 1),
                                       _mm512_set1_epi64(3));
  return _mm512_cmpeq_epi64_mask(cls, _mm512_set1_epi64(1));
}

VCGRA_TARGET inline __m512i v_load(const std::uint64_t* p, __mmask8 lane_mask) {
  return _mm512_maskz_loadu_epi64(lane_mask, p);
}

}  // namespace

VCGRA_TARGET void mul_coeff_n(const Fmt& m, const std::uint64_t* a, u64 coeff,
                              std::uint64_t* out, std::size_t n) {
  const CoeffMul c(m, coeff);
  if (!lanes_fit(m) || c.cls != 1) {  // special coefficient: scalar ladder
    for (std::size_t i = 0; i < n; ++i) out[i] = mul_one_coeff(m, a[i], c);
    return;
  }
  for (std::size_t i = 0; i < n; i += 8) {
    const __mmask8 lanes =
        n - i >= 8 ? 0xff : static_cast<__mmask8>((1u << (n - i)) - 1);
    const __m512i va = v_load(a + i, lanes);
    const VStage stage = v_mul_coeff(m, va, c);
    // `out` may alias `a`: snapshot the loaded lanes before storing so
    // the special-class patch reads originals, not the vector result.
    __mmask8 patch = _kand_mask8(lanes, _knot_mask8(v_normal(m, va)));
    alignas(64) u64 ta[8];
    if (patch) _mm512_store_epi64(ta, va);
    _mm512_mask_storeu_epi64(out + i, lanes, stage.bits);
    while (patch) {
      const unsigned lane = static_cast<unsigned>(__builtin_ctz(patch));
      out[i + lane] = mul_one_coeff(m, ta[lane], c);
      patch = static_cast<__mmask8>(patch & (patch - 1));
    }
  }
}

VCGRA_TARGET void mul_n(const Fmt& m, const std::uint64_t* a,
                        const std::uint64_t* b, std::uint64_t* out,
                        std::size_t n) {
  if (!lanes_fit(m)) {
    for (std::size_t i = 0; i < n; ++i) out[i] = mul_one(m, a[i], b[i]);
    return;
  }
  for (std::size_t i = 0; i < n; i += 8) {
    const __mmask8 lanes =
        n - i >= 8 ? 0xff : static_cast<__mmask8>((1u << (n - i)) - 1);
    const __m512i va = v_load(a + i, lanes);
    const __m512i vb = v_load(b + i, lanes);
    const VStage stage = v_mul(m, va, vb);
    // `out` may alias either input: patch from register snapshots.
    __mmask8 patch = _kand_mask8(
        lanes, _knot_mask8(_kand_mask8(v_normal(m, va), v_normal(m, vb))));
    alignas(64) u64 ta[8], tb[8];
    if (patch) {
      _mm512_store_epi64(ta, va);
      _mm512_store_epi64(tb, vb);
    }
    _mm512_mask_storeu_epi64(out + i, lanes, stage.bits);
    while (patch) {
      const unsigned lane = static_cast<unsigned>(__builtin_ctz(patch));
      out[i + lane] = mul_one(m, ta[lane], tb[lane]);
      patch = static_cast<__mmask8>(patch & (patch - 1));
    }
  }
}

VCGRA_TARGET void add_xor_n(const Fmt& m, const std::uint64_t* a,
                            const std::uint64_t* b, u64 b_xor,
                            std::uint64_t* out, std::size_t n) {
  const __m512i vxor = _mm512_set1_epi64(static_cast<long long>(b_xor));
  for (std::size_t i = 0; i < n; i += 8) {
    const __mmask8 lanes =
        n - i >= 8 ? 0xff : static_cast<__mmask8>((1u << (n - i)) - 1);
    const __m512i va = v_load(a + i, lanes);
    const __m512i vb = _mm512_xor_epi64(v_load(b + i, lanes), vxor);
    const __m512i sum = v_add(m, va, vb);
    // `out` may alias either input: patch from register snapshots (vb
    // already carries b_xor, so the scalar redo applies none).
    __mmask8 patch = _kand_mask8(
        lanes, _knot_mask8(_kand_mask8(v_normal(m, va), v_normal(m, vb))));
    alignas(64) u64 ta[8], tb[8];
    if (patch) {
      _mm512_store_epi64(ta, va);
      _mm512_store_epi64(tb, vb);
    }
    _mm512_mask_storeu_epi64(out + i, lanes, sum);
    while (patch) {
      const unsigned lane = static_cast<unsigned>(__builtin_ctz(patch));
      out[i + lane] = add_one(m, ta[lane], tb[lane]);
      patch = static_cast<__mmask8>(patch & (patch - 1));
    }
  }
}

VCGRA_TARGET void axpy_n(const Fmt& m, const std::uint64_t* a,
                         const std::uint64_t* x, u64 coeff, u64 mul_xor,
                         std::uint64_t* out, std::size_t n) {
  const CoeffMul c(m, coeff);
  if (!lanes_fit(m) || c.cls != 1) {
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = add_one(m, a[i], mul_one_coeff(m, x[i], c) ^ mul_xor);
    }
    return;
  }
  const __m512i vxor = _mm512_set1_epi64(static_cast<long long>(mul_xor));
  for (std::size_t i = 0; i < n; i += 8) {
    const __mmask8 lanes =
        n - i >= 8 ? 0xff : static_cast<__mmask8>((1u << (n - i)) - 1);
    const __m512i va = v_load(a + i, lanes);
    const __m512i vx = v_load(x + i, lanes);
    const VStage mul = v_mul_coeff(m, vx, c);
    const __m512i prod = _mm512_xor_epi64(mul.bits, vxor);
    const __m512i sum = v_add(m, va, prod);
    // Patch: special a/x operands, or a mul that clamped to zero/inf
    // (the vector add assumes normal operands). `out` may alias an
    // input, so snapshot the loaded lanes before storing.
    const __mmask8 ok = _kand_mask8(
        _kand_mask8(v_normal(m, va), v_normal(m, vx)), mul.res_norm);
    __mmask8 patch = _kand_mask8(lanes, _knot_mask8(ok));
    alignas(64) u64 ta[8], tx[8];
    if (patch) {
      _mm512_store_epi64(ta, va);
      _mm512_store_epi64(tx, vx);
    }
    _mm512_mask_storeu_epi64(out + i, lanes, sum);
    while (patch) {
      const unsigned lane = static_cast<unsigned>(__builtin_ctz(patch));
      out[i + lane] =
          add_one(m, ta[lane], mul_one_coeff(m, tx[lane], c) ^ mul_xor);
      patch = static_cast<__mmask8>(patch & (patch - 1));
    }
  }
}

VCGRA_TARGET void xpay_n(const Fmt& m, const std::uint64_t* x, u64 coeff,
                         const std::uint64_t* b, u64 b_xor, std::uint64_t* out,
                         std::size_t n) {
  const CoeffMul c(m, coeff);
  if (!lanes_fit(m) || c.cls != 1) {
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = add_one(m, mul_one_coeff(m, x[i], c), b[i] ^ b_xor);
    }
    return;
  }
  const __m512i vxor = _mm512_set1_epi64(static_cast<long long>(b_xor));
  for (std::size_t i = 0; i < n; i += 8) {
    const __mmask8 lanes =
        n - i >= 8 ? 0xff : static_cast<__mmask8>((1u << (n - i)) - 1);
    const __m512i vx = v_load(x + i, lanes);
    const __m512i vb = _mm512_xor_epi64(v_load(b + i, lanes), vxor);
    const VStage mul = v_mul_coeff(m, vx, c);
    const __m512i sum = v_add(m, mul.bits, vb);
    // `out` may alias an input: snapshot before storing (vb already
    // carries b_xor, so the scalar redo applies none).
    const __mmask8 ok = _kand_mask8(
        _kand_mask8(v_normal(m, vx), v_normal(m, vb)), mul.res_norm);
    __mmask8 patch = _kand_mask8(lanes, _knot_mask8(ok));
    alignas(64) u64 tx[8], tb[8];
    if (patch) {
      _mm512_store_epi64(tx, vx);
      _mm512_store_epi64(tb, vb);
    }
    _mm512_mask_storeu_epi64(out + i, lanes, sum);
    while (patch) {
      const unsigned lane = static_cast<unsigned>(__builtin_ctz(patch));
      out[i + lane] = add_one(m, mul_one_coeff(m, tx[lane], c), tb[lane]);
      patch = static_cast<__mmask8>(patch & (patch - 1));
    }
  }
}

VCGRA_TARGET void from_double_n(const Fmt& m, const double* in,
                                std::uint64_t* out, std::size_t n) {
  if (m.wf >= 52) {  // no fraction bits to drop: scalar path
    for (std::size_t i = 0; i < n; ++i) out[i] = fpcore::encode_one(m, in[i]);
    return;
  }
  const int drop = 52 - m.wf;
  const __m512i one = _mm512_set1_epi64(1);
  const __m512i mask52 = _mm512_set1_epi64((1ll << 52) - 1);
  const __m512i frac_mask = _mm512_set1_epi64(static_cast<long long>(m.frac_mask));
  const __m512i exp_mask_v = _mm512_set1_epi64(static_cast<long long>(m.exp_mask));
  const __m512i hidden = _mm512_set1_epi64(static_cast<long long>(m.hidden));
  const __m512i sticky_below = _mm512_set1_epi64((1ll << (drop - 1)) - 1);

  for (std::size_t i = 0; i < n; i += 8) {
    const __mmask8 lanes =
        n - i >= 8 ? 0xff : static_cast<__mmask8>((1u << (n - i)) - 1);
    const __m512i d = _mm512_maskz_loadu_epi64(
        lanes, reinterpret_cast<const long long*>(in + i));
    const __m512i sign = _mm512_srli_epi64(d, 63);
    const __m512i dexp =
        _mm512_and_epi64(_mm512_srli_epi64(d, 52), _mm512_set1_epi64(0x7ff));
    const __m512i dfrac = _mm512_and_epi64(d, mask52);
    const __mmask8 exp_all1 =
        _mm512_cmpeq_epi64_mask(dexp, _mm512_set1_epi64(0x7ff));
    const __mmask8 exp_zero =
        _mm512_cmpeq_epi64_mask(dexp, _mm512_setzero_si512());
    const __mmask8 frac_zero =
        _mm512_cmpeq_epi64_mask(dfrac, _mm512_setzero_si512());
    const __mmask8 denormal = _kand_mask8(exp_zero, _knot_mask8(frac_zero));

    // Normal-double path (RNE from 52 to wf fraction bits).
    __m512i frac = _mm512_srli_epi64(dfrac, drop);
    const __m512i guard =
        _mm512_and_epi64(_mm512_srli_epi64(dfrac, drop - 1), one);
    const __mmask8 sticky_k = _mm512_test_epi64_mask(dfrac, sticky_below);
    const __m512i sticky = _mm512_maskz_mov_epi64(sticky_k, one);
    const __m512i round_up = _mm512_and_epi64(
        guard, _mm512_or_epi64(sticky, _mm512_and_epi64(frac, one)));
    frac = _mm512_add_epi64(frac, round_up);
    const __mmask8 frac_carry = _mm512_cmpeq_epi64_mask(frac, hidden);
    frac = _mm512_maskz_mov_epi64(_knot_mask8(frac_carry), frac);
    // exponent = (e2 - 1) + bias = dexp - 1023 + bias (+ rounding carry).
    __m512i exponent = _mm512_add_epi64(
        dexp, _mm512_set1_epi64(static_cast<long long>(m.bias - 1023)));
    exponent = _mm512_add_epi64(
        exponent, _mm512_maskz_mov_epi64(frac_carry, one));

    const __m512i sign_shifted = _mm512_slli_epi64(sign, m.shift);
    const __mmask8 under =
        _mm512_cmplt_epi64_mask(exponent, _mm512_setzero_si512());
    const __mmask8 over = _mm512_cmpgt_epi64_mask(exponent, exp_mask_v);

    const __m512i inf_bits = _mm512_or_epi64(
        sign_shifted, _mm512_set1_epi64(static_cast<long long>(m.inf_base)));
    __m512i res = _mm512_or_epi64(
        _mm512_or_epi64(
            _mm512_slli_epi64(_mm512_or_epi64(sign, _mm512_set1_epi64(2)),
                              m.shift),
            _mm512_slli_epi64(exponent, m.wf)),
        _mm512_and_epi64(frac, frac_mask));
    res = _mm512_mask_mov_epi64(res, under, sign_shifted);
    res = _mm512_mask_mov_epi64(res, over, inf_bits);
    // Specials: ±0, ±inf, NaN.
    res = _mm512_mask_mov_epi64(res, _kand_mask8(exp_zero, frac_zero),
                                sign_shifted);
    res = _mm512_mask_mov_epi64(res, _kand_mask8(exp_all1, frac_zero),
                                inf_bits);
    res = _mm512_mask_mov_epi64(
        res, _kand_mask8(exp_all1, _knot_mask8(frac_zero)),
        _mm512_set1_epi64(static_cast<long long>(m.nan_bits)));
    _mm512_mask_storeu_epi64(out + i, lanes, res);

    // Denormal doubles renormalize through the scalar encoder (rare).
    __mmask8 patch = _kand_mask8(lanes, denormal);
    while (patch) {
      const unsigned lane = static_cast<unsigned>(__builtin_ctz(patch));
      out[i + lane] = fpcore::encode_one(m, in[i + lane]);
      patch = static_cast<__mmask8>(patch & (patch - 1));
    }
  }
}

VCGRA_TARGET void to_double_n(const Fmt& m, const std::uint64_t* in,
                              double* out, std::size_t n) {
  if (m.wf > 52) {  // fraction wider than a double's: scalar whole-call
    for (std::size_t i = 0; i < n; ++i) out[i] = fpcore::decode_one(m, in[i]);
    return;
  }
  const __m512i one = _mm512_set1_epi64(1);
  const __m512i three = _mm512_set1_epi64(3);
  const __m512i exp_mask_v = _mm512_set1_epi64(static_cast<long long>(m.exp_mask));
  const __m512i frac_mask = _mm512_set1_epi64(static_cast<long long>(m.frac_mask));
  // dexp = (exponent - bias) + 1023, folded into one constant add.
  const __m512i rebias =
      _mm512_set1_epi64(static_cast<long long>(1023 - m.bias));

  for (std::size_t i = 0; i < n; i += 8) {
    const __mmask8 lanes =
        n - i >= 8 ? 0xff : static_cast<__mmask8>((1u << (n - i)) - 1);
    const __m512i bits = v_load(in + i, lanes);
    const __m512i cls =
        _mm512_and_epi64(_mm512_srli_epi64(bits, m.shift + 1), three);
    const __m512i sign =
        _mm512_and_epi64(_mm512_srli_epi64(bits, m.shift), one);
    const __m512i exponent =
        _mm512_and_epi64(_mm512_srli_epi64(bits, m.wf), exp_mask_v);
    const __m512i fraction = _mm512_and_epi64(bits, frac_mask);
    const __m512i dexp = _mm512_add_epi64(exponent, rebias);

    // decode_one's exact normal-range assembly: the fraction widens
    // losslessly into a double's 52 bits.
    const __m512i res = _mm512_or_epi64(
        _mm512_or_epi64(_mm512_slli_epi64(sign, 63),
                        _mm512_slli_epi64(dexp, 52)),
        _mm512_slli_epi64(fraction, 52 - m.wf));

    const __mmask8 normal = _mm512_cmpeq_epi64_mask(cls, one);
    const __mmask8 in_range =
        _kand_mask8(_mm512_cmpgt_epi64_mask(dexp, _mm512_setzero_si512()),
                    _mm512_cmplt_epi64_mask(dexp, _mm512_set1_epi64(2047)));
    // Specials and out-of-double-range exponents redo through the scalar
    // decoder; snapshot before the store in case `out` overlays `in`
    // (the raw-bits boundary decodes in place).
    __mmask8 patch =
        _kand_mask8(lanes, _knot_mask8(_kand_mask8(normal, in_range)));
    alignas(64) u64 tbits[8];
    if (patch) _mm512_store_epi64(tbits, bits);
    _mm512_mask_storeu_epi64(reinterpret_cast<long long*>(out) + i, lanes,
                             res);
    while (patch) {
      const unsigned lane = static_cast<unsigned>(__builtin_ctz(patch));
      out[i + lane] = fpcore::decode_one(m, tbits[lane]);
      patch = static_cast<__mmask8>(patch & (patch - 1));
    }
  }
}

#else  // !VCGRA_SIMD_X86 — portable stubs; available() keeps them unreachable.

bool available() { return false; }

void mul_n(const Fmt& m, const std::uint64_t* a, const std::uint64_t* b,
           std::uint64_t* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = mul_one(m, a[i], b[i]);
}
void mul_coeff_n(const Fmt& m, const std::uint64_t* a, u64 coeff,
                 std::uint64_t* out, std::size_t n) {
  const CoeffMul c(m, coeff);
  for (std::size_t i = 0; i < n; ++i) out[i] = mul_one_coeff(m, a[i], c);
}
void add_xor_n(const Fmt& m, const std::uint64_t* a, const std::uint64_t* b,
               u64 b_xor, std::uint64_t* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = add_one(m, a[i], b[i] ^ b_xor);
}
void axpy_n(const Fmt& m, const std::uint64_t* a, const std::uint64_t* x,
            u64 coeff, u64 mul_xor, std::uint64_t* out, std::size_t n) {
  const CoeffMul c(m, coeff);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = add_one(m, a[i], mul_one_coeff(m, x[i], c) ^ mul_xor);
  }
}
void xpay_n(const Fmt& m, const std::uint64_t* x, u64 coeff,
            const std::uint64_t* b, u64 b_xor, std::uint64_t* out,
            std::size_t n) {
  const CoeffMul c(m, coeff);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = add_one(m, mul_one_coeff(m, x[i], c), b[i] ^ b_xor);
  }
}
void from_double_n(const Fmt& m, const double* in, std::uint64_t* out,
                   std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = fpcore::encode_one(m, in[i]);
}
void to_double_n(const Fmt& m, const std::uint64_t* in, double* out,
                 std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = fpcore::decode_one(m, in[i]);
}

#endif  // VCGRA_SIMD_X86

}  // namespace vcgra::softfloat::simd
