// Internal scalar core of the batch FloPoCo kernels: the hoisted-format
// element operations shared by the portable loops (batch.cpp) and the
// AVX-512 lanes' special-case patch-ups (batch_simd.cpp). Every helper
// here is a bit-for-bit translation of the scalar FpValue arithmetic in
// fpformat.cpp — see the contract note in include/vcgra/softfloat/batch.hpp.
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>

#include "vcgra/softfloat/fpformat.hpp"

namespace vcgra::softfloat::fpcore {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

/// Every format-derived constant the element loops need, computed once
/// per batch call instead of once per element.
struct Fmt {
  int we;
  int wf;
  int shift;          // we + wf: position of the sign bit
  std::int64_t bias;
  u64 exp_mask;
  u64 frac_mask;
  u64 hidden;         // 1 << wf
  u64 sign_bit;       // 1 << shift
  u64 nan_bits;       // canonical NaN encoding
  u64 inf_base;       // infinity with sign 0; OR the sign in

  explicit Fmt(const FpFormat& f)
      : we(f.we),
        wf(f.wf),
        shift(f.we + f.wf),
        bias(f.bias()),
        exp_mask(f.exp_mask()),
        frac_mask(f.frac_mask()),
        hidden(u64{1} << f.wf),
        sign_bit(u64{1} << shift),
        nan_bits(u64{6} << shift),
        inf_base(u64{4} << shift) {}

  u64 cls(u64 bits) const { return (bits >> (shift + 1)) & 3; }
  u64 sign(u64 bits) const { return (bits >> shift) & 1; }
  u64 exponent(u64 bits) const { return (bits >> wf) & exp_mask; }
  u64 fraction(u64 bits) const { return bits & frac_mask; }
  u64 zero(u64 sign) const { return sign << shift; }
  u64 inf(u64 sign) const { return inf_base | (sign << shift); }
  u64 normal(u64 sign, u64 exponent, u64 fraction) const {
    return ((u64{2} | sign) << shift) | (exponent << wf) | fraction;
  }
};

// FpClass encodings (fpformat.hpp): 0 zero, 1 normal, 2 inf, 3 NaN.
constexpr u64 kZero = 0, kNormal = 1, kInf = 2, kNaN = 3;

/// Round-and-pack tail shared by every multiplier path: `product` is the
/// (2wf+2)-bit significand product, already narrowed to u64 when the
/// format allows. Bit-identical to the tail of fp_mul (fpformat.cpp).
template <typename Product>
inline u64 mul_pack(const Fmt& m, u64 sign, u64 exp_a, u64 exp_b,
                    Product product) {
  // Whether the product landed in [2,4) is data-dependent coin-flip
  // territory, so everything below is arithmetic on `top` instead of a
  // branch: guard sits at bit wf-1+top, the kept fraction right above it.
  const int top = static_cast<int>((product >> (2 * m.wf + 1)) & 1);
  const int sh = m.wf - 1 + top;
  const u64 frac_pre = static_cast<u64>(product >> (sh + 1)) & m.frac_mask;
  const u64 guard = static_cast<u64>(product >> sh) & 1;
  const u64 sticky = (product & ((Product{1} << sh) - 1)) != 0;
  const u64 round_up = guard & (sticky | (frac_pre & 1));
  u64 mant = (m.hidden | frac_pre) + round_up;
  const u64 exp_round = mant >> (m.wf + 1);  // 1.111..1 rounded to 10.000..0
  mant >>= exp_round;
  const std::int64_t exponent =
      static_cast<std::int64_t>(exp_a) + static_cast<std::int64_t>(exp_b) -
      m.bias + top + static_cast<std::int64_t>(exp_round);
  if (exponent < 0) return m.zero(sign);
  if (exponent > static_cast<std::int64_t>(m.exp_mask)) return m.inf(sign);
  return m.normal(sign, static_cast<u64>(exponent), mant & m.frac_mask);
}

/// Bit-for-bit translation of fp_mul (fpformat.cpp) with the format
/// constants hoisted into `m`. The significand product stays in a u64
/// whenever 2wf+2 <= 64 (every shipped format) — the u128 path is the
/// generic fallback for very wide fractions.
inline u64 mul_one(const Fmt& m, u64 a, u64 b) {
  const u64 sign = m.sign(a) ^ m.sign(b);
  const u64 ca = m.cls(a), cb = m.cls(b);

  if (ca == kNaN || cb == kNaN) return m.nan_bits;
  if ((ca == kInf && cb == kZero) || (ca == kZero && cb == kInf)) {
    return m.nan_bits;
  }
  if (ca == kInf || cb == kInf) return m.inf(sign);
  if (ca == kZero || cb == kZero) return m.zero(sign);

  const u64 ma = m.hidden | m.fraction(a);
  const u64 mb = m.hidden | m.fraction(b);
  if (2 * m.wf + 2 <= 64) {
    return mul_pack<u64>(m, sign, m.exponent(a), m.exponent(b), ma * mb);
  }
  return mul_pack<u128>(m, sign, m.exponent(a), m.exponent(b),
                        static_cast<u128>(ma) * static_cast<u128>(mb));
}

/// One element of a mul-by-coefficient stream: the coefficient's class,
/// sign, significand and exponent are decoded once per batch (see
/// CoeffMul below), so the element loop only classifies the stream side.
struct CoeffMul {
  u64 cls;       // FpClass of the coefficient
  u64 sign;      // sign bit value (0/1)
  u64 mant;      // hidden | fraction
  u64 exponent;  // biased

  CoeffMul(const Fmt& m, u64 coeff)
      : cls(m.cls(coeff)),
        sign(m.sign(coeff)),
        mant(m.hidden | m.fraction(coeff)),
        exponent(m.exponent(coeff)) {}
};

inline u64 mul_one_coeff(const Fmt& m, u64 a, const CoeffMul& c) {
  const u64 sign = m.sign(a) ^ c.sign;
  const u64 ca = m.cls(a);

  if (ca == kNaN || c.cls == kNaN) return m.nan_bits;
  if ((ca == kInf && c.cls == kZero) || (ca == kZero && c.cls == kInf)) {
    return m.nan_bits;
  }
  if (ca == kInf || c.cls == kInf) return m.inf(sign);
  if (ca == kZero || c.cls == kZero) return m.zero(sign);

  const u64 ma = m.hidden | m.fraction(a);
  if (2 * m.wf + 2 <= 64) {
    return mul_pack<u64>(m, sign, m.exponent(a), c.exponent, ma * c.mant);
  }
  return mul_pack<u128>(m, sign, m.exponent(a), c.exponent,
                        static_cast<u128>(ma) * static_cast<u128>(c.mant));
}

/// Bit-for-bit translation of fp_add (fpformat.cpp). The hot
/// normal+normal path is branch-free: operand ordering, the effective
/// subtract, alignment sticky, the normalize (countl_zero instead of the
/// scalar's linear MSB scan) and the rounding carry are all arithmetic —
/// the scalar version's data-dependent branches mispredict on roughly
/// every other element of a real stream.
inline u64 add_one(const Fmt& m, u64 a, u64 b) {
  const u64 ca = m.cls(a), cb = m.cls(b);
  if (ca != kNormal || cb != kNormal) {  // one predictable branch
    if (ca == kNaN || cb == kNaN) return m.nan_bits;
    if (ca == kInf && cb == kInf) {
      return m.sign(a) == m.sign(b) ? a : m.nan_bits;
    }
    if (ca == kInf) return a;
    if (cb == kInf) return b;
    if (ca == kZero) {
      return cb == kZero ? m.zero(m.sign(a) & m.sign(b)) : b;
    }
    return a;  // cb == kZero
  }

  // Order by magnitude: X is the larger (exp,frac) pair; ties keep a.
  const u64 mag_a = (m.exponent(a) << m.wf) | m.fraction(a);
  const u64 mag_b = (m.exponent(b) << m.wf) | m.fraction(b);
  const bool a_big = mag_a >= mag_b;
  const u64 x = a_big ? a : b;
  const u64 y = a_big ? b : a;
  const u64 x_sign = m.sign(x);
  const u64 exp_x = m.exponent(x);

  // Alignment shift, capped at the operand width: a fully shifted-out Y
  // degenerates to the same pure-sticky 1 the scalar's d >= width branch
  // produces (my_full has wf+4 significant bits).
  const u64 width = static_cast<u64>(m.wf) + 4;
  u64 d = exp_x - m.exponent(y);
  d = d < width ? d : width;
  const u64 mx = (m.hidden | m.fraction(x)) << 3;
  const u64 my_full = (m.hidden | m.fraction(y)) << 3;
  u64 my = my_full >> d;
  my |= (my << d) != my_full;  // sticky for the shifted-out bits

  // s = eff_sub ? mx - my : mx + my, via conditional negation.
  const u64 eff_sub = x_sign ^ m.sign(y);
  const u64 neg = 0 - eff_sub;
  const u64 s = mx + (my ^ neg) + eff_sub;  // fits in wf+5 bits
  if (s == 0) return m.zero(0);  // exact cancellation (rare)

  // Normalize so the leading 1 sits at bit wf+3.
  const int t = m.wf + 3;
  const int k = 63 - std::countl_zero(s);
  const std::int64_t exp_shift = k - t;
  const bool carry = k > t;
  // Carry out: shift right one, preserve sticky. The left-shift operand
  // is garbage when carry is set ((t - k) wraps) — never selected.
  const u64 s_norm = carry ? ((s >> 1) | (s & 1))
                           : (s << (static_cast<unsigned>(t - k) & 63));

  const u64 frac_pre = (s_norm >> 3) & m.frac_mask;
  const u64 guard = (s_norm >> 2) & 1;
  const u64 sticky = (s_norm & 3) != 0;
  const u64 round_up = guard & (sticky | (frac_pre & 1));
  u64 mant = (m.hidden | frac_pre) + round_up;
  const u64 mant_carry = mant >> (m.wf + 1);
  mant >>= mant_carry;
  const std::int64_t exponent = static_cast<std::int64_t>(exp_x) + exp_shift +
                                static_cast<std::int64_t>(mant_carry);
  if (exponent < 0) return m.zero(x_sign);
  if (exponent > static_cast<std::int64_t>(m.exp_mask)) return m.inf(x_sign);
  return m.normal(x_sign, static_cast<u64>(exponent), mant & m.frac_mask);
}

inline u64 encode_one(const Fmt& m, double value) {
  const u64 d = std::bit_cast<u64>(value);
  const u64 sign = d >> 63;
  const u64 dexp = (d >> 52) & 0x7ff;
  const u64 dfrac = d & ((u64{1} << 52) - 1);

  if (dexp == 0x7ff) return dfrac ? m.nan_bits : m.inf(sign);
  if (dexp == 0 && dfrac == 0) return m.zero(sign);

  // frexp exponent (value = 0.1f.. * 2^e2) and the 52 fraction bits of
  // the normalized significand. Denormal doubles renormalize via the MSB.
  std::int64_t e2;
  u64 f52;
  if (dexp != 0) {
    e2 = static_cast<std::int64_t>(dexp) - 1022;
    f52 = dfrac;
  } else {
    const int msb = 63 - std::countl_zero(dfrac);
    e2 = msb - 1073;
    f52 = (dfrac << (52 - msb)) & ((u64{1} << 52) - 1);
  }

  // RNE from 52 fraction bits to wf — identical ties-to-even behavior to
  // from_double's nearbyint((2m - 1) * 2^wf).
  u64 frac;
  const int drop = 52 - m.wf;
  if (drop <= 0) {
    frac = f52 << -drop;
  } else {
    frac = f52 >> drop;
    const bool guard = (f52 >> (drop - 1)) & 1;
    const bool sticky = (f52 & ((u64{1} << (drop - 1)) - 1)) != 0;
    if (guard && (sticky || (frac & 1))) ++frac;
  }
  std::int64_t exponent = (e2 - 1) + m.bias;
  if (frac == m.hidden) {  // rounding carried into the hidden bit
    frac = 0;
    ++exponent;
  }
  if (exponent < 0) return m.zero(sign);
  if (exponent > static_cast<std::int64_t>(m.exp_mask)) return m.inf(sign);
  return m.normal(sign, static_cast<u64>(exponent), frac);
}

inline double decode_one(const Fmt& m, u64 bits) {
  switch (m.cls(bits)) {
    case kZero: return m.sign(bits) ? -0.0 : 0.0;
    case kInf:
      return m.sign(bits) ? -std::numeric_limits<double>::infinity()
                          : std::numeric_limits<double>::infinity();
    case kNaN: return std::numeric_limits<double>::quiet_NaN();
    default: break;
  }
  const std::int64_t e =
      static_cast<std::int64_t>(m.exponent(bits)) - m.bias;
  const std::int64_t dexp = e + 1023;
  if (m.wf <= 52 && dexp >= 1 && dexp <= 2046) {
    // Exact normal-range assembly: fraction widens losslessly to 52 bits.
    return std::bit_cast<double>((m.sign(bits) << 63) |
                                 (static_cast<u64>(dexp) << 52) |
                                 (m.fraction(bits) << (52 - m.wf)));
  }
  // Outside the normal double range (or an oversized fraction): fall back
  // to the exact expression FpValue::to_double evaluates.
  const double significand =
      1.0 + std::ldexp(static_cast<double>(m.fraction(bits)), -m.wf);
  const double magnitude = std::ldexp(significand, static_cast<int>(e));
  return m.sign(bits) ? -magnitude : magnitude;
}


}  // namespace vcgra::softfloat::fpcore
