#include "vcgra/softfloat/fpformat.hpp"

#include <cmath>
#include <stdexcept>

#include "vcgra/common/strings.hpp"

namespace vcgra::softfloat {
namespace {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

u64 make_bits(const FpFormat& f, FpClass cls, bool sign, u64 exponent, u64 fraction) {
  u64 bits = static_cast<u64>(cls);
  bits = (bits << 1) | (sign ? 1 : 0);
  bits = (bits << f.we) | (exponent & f.exp_mask());
  bits = (bits << f.wf) | (fraction & f.frac_mask());
  return bits;
}

}  // namespace

FpValue FpValue::zero(FpFormat format, bool negative) {
  return FpValue(format, make_bits(format, FpClass::kZero, negative, 0, 0));
}

FpValue FpValue::infinity(FpFormat format, bool negative) {
  return FpValue(format, make_bits(format, FpClass::kInf, negative, 0, 0));
}

FpValue FpValue::nan(FpFormat format) {
  return FpValue(format, make_bits(format, FpClass::kNaN, false, 0, 0));
}

FpValue FpValue::from_fields(FpFormat format, bool sign, u64 exponent, u64 fraction) {
  return FpValue(format, make_bits(format, FpClass::kNormal, sign, exponent, fraction));
}

FpValue FpValue::from_double(FpFormat format, double value) {
  if (std::isnan(value)) return nan(format);
  if (std::isinf(value)) return infinity(format, value < 0);
  if (value == 0.0) return zero(format, std::signbit(value));

  const bool sign = value < 0;
  int e2 = 0;
  double m = std::frexp(std::fabs(value), &e2);  // m in [0.5, 1)
  // Significand 1.f = 2m in [1, 2); fraction = RNE((2m - 1) * 2^wf).
  const double scaled = std::ldexp(2.0 * m - 1.0, format.wf);
  u64 frac = static_cast<u64>(std::nearbyint(scaled));  // default mode = RNE
  std::int64_t exponent = (e2 - 1) + format.bias();
  if (frac == (u64{1} << format.wf)) {  // rounding carried into the hidden bit
    frac = 0;
    ++exponent;
  }
  if (exponent < 0) return zero(format, sign);
  if (exponent > static_cast<std::int64_t>(format.exp_mask())) {
    return infinity(format, sign);
  }
  return from_fields(format, sign, static_cast<u64>(exponent), frac);
}

FpClass FpValue::fp_class() const {
  return static_cast<FpClass>((bits_ >> (format_.we + format_.wf + 1)) & 3);
}

bool FpValue::sign() const { return (bits_ >> (format_.we + format_.wf)) & 1; }

std::uint64_t FpValue::exponent() const {
  return (bits_ >> format_.wf) & format_.exp_mask();
}

std::uint64_t FpValue::fraction() const { return bits_ & format_.frac_mask(); }

double FpValue::to_double() const {
  switch (fp_class()) {
    case FpClass::kZero: return sign() ? -0.0 : 0.0;
    case FpClass::kInf:
      return sign() ? -std::numeric_limits<double>::infinity()
                    : std::numeric_limits<double>::infinity();
    case FpClass::kNaN: return std::numeric_limits<double>::quiet_NaN();
    case FpClass::kNormal: break;
  }
  const double significand =
      1.0 + std::ldexp(static_cast<double>(fraction()), -format_.wf);
  const double magnitude = std::ldexp(
      significand, static_cast<int>(static_cast<std::int64_t>(exponent()) -
                                    format_.bias()));
  return sign() ? -magnitude : magnitude;
}

std::string FpValue::to_string() const {
  switch (fp_class()) {
    case FpClass::kZero: return sign() ? "-0" : "+0";
    case FpClass::kInf: return sign() ? "-inf" : "+inf";
    case FpClass::kNaN: return "nan";
    case FpClass::kNormal: break;
  }
  return common::strprintf("%.9g", to_double());
}

FpValue fp_mul(const FpValue& a, const FpValue& b) {
  const FpFormat f = a.format();
  if (!(f == b.format())) throw std::invalid_argument("fp_mul: format mismatch");
  const bool sign = a.sign() != b.sign();
  const FpClass ca = a.fp_class();
  const FpClass cb = b.fp_class();

  if (ca == FpClass::kNaN || cb == FpClass::kNaN) return FpValue::nan(f);
  if ((ca == FpClass::kInf && cb == FpClass::kZero) ||
      (ca == FpClass::kZero && cb == FpClass::kInf)) {
    return FpValue::nan(f);
  }
  if (ca == FpClass::kInf || cb == FpClass::kInf) return FpValue::infinity(f, sign);
  if (ca == FpClass::kZero || cb == FpClass::kZero) return FpValue::zero(f, sign);

  const u64 ma = (u64{1} << f.wf) | a.fraction();  // wf+1 bits
  const u64 mb = (u64{1} << f.wf) | b.fraction();
  const u128 product = static_cast<u128>(ma) * static_cast<u128>(mb);  // 2wf+2 bits

  const bool top = (product >> (2 * f.wf + 1)) & 1;  // product in [2,4)
  u64 frac_pre, guard;
  bool sticky;
  if (top) {
    frac_pre = static_cast<u64>(product >> (f.wf + 1)) & f.frac_mask();
    guard = static_cast<u64>(product >> f.wf) & 1;
    sticky = (product & ((u128{1} << f.wf) - 1)) != 0;
  } else {
    frac_pre = static_cast<u64>(product >> f.wf) & f.frac_mask();
    guard = static_cast<u64>(product >> (f.wf - 1)) & 1;
    sticky = (product & ((u128{1} << (f.wf - 1)) - 1)) != 0;
  }
  const bool lsb = frac_pre & 1;
  const bool round_up = guard && (sticky || lsb);
  u64 mant = ((u64{1} << f.wf) | frac_pre) + (round_up ? 1 : 0);
  int exp_round = 0;
  if (mant >> (f.wf + 1)) {  // 1.111..1 rounded up to 10.000..0
    mant >>= 1;
    exp_round = 1;
  }
  const std::int64_t exponent = static_cast<std::int64_t>(a.exponent()) +
                                static_cast<std::int64_t>(b.exponent()) - f.bias() +
                                (top ? 1 : 0) + exp_round;
  if (exponent < 0) return FpValue::zero(f, sign);
  if (exponent > static_cast<std::int64_t>(f.exp_mask())) {
    return FpValue::infinity(f, sign);
  }
  return FpValue::from_fields(f, sign, static_cast<u64>(exponent), mant & f.frac_mask());
}

FpValue fp_add(const FpValue& a, const FpValue& b) {
  const FpFormat f = a.format();
  if (!(f == b.format())) throw std::invalid_argument("fp_add: format mismatch");
  const FpClass ca = a.fp_class();
  const FpClass cb = b.fp_class();

  if (ca == FpClass::kNaN || cb == FpClass::kNaN) return FpValue::nan(f);
  if (ca == FpClass::kInf && cb == FpClass::kInf) {
    return a.sign() == b.sign() ? a : FpValue::nan(f);
  }
  if (ca == FpClass::kInf) return a;
  if (cb == FpClass::kInf) return b;
  if (ca == FpClass::kZero) return cb == FpClass::kZero && a.sign() && b.sign()
                                        ? FpValue::zero(f, true)
                                        : (cb == FpClass::kZero ? FpValue::zero(f) : b);
  if (cb == FpClass::kZero) return a;

  // Order by magnitude: X is the larger (exp,frac) pair; ties keep a.
  const u64 mag_a = (a.exponent() << f.wf) | a.fraction();
  const u64 mag_b = (b.exponent() << f.wf) | b.fraction();
  const FpValue& x = mag_a >= mag_b ? a : b;
  const FpValue& y = mag_a >= mag_b ? b : a;

  const u64 d = x.exponent() - y.exponent();
  // Significands with 3 guard bits appended.
  const u64 mx = (((u64{1} << f.wf) | x.fraction()) << 3);
  const u64 my_full = (((u64{1} << f.wf) | y.fraction()) << 3);
  u64 my;
  const u64 width = static_cast<u64>(f.wf) + 4;  // bits in mx/my_full
  if (d >= width) {
    my = 1;  // pure sticky
  } else {
    my = my_full >> d;
    if ((my << d) != my_full) my |= 1;  // sticky for the shifted-out bits
  }

  const bool eff_sub = x.sign() != y.sign();
  const u64 s = eff_sub ? mx - my : mx + my;  // fits in wf+5 bits
  if (s == 0) return FpValue::zero(f);

  // Normalize so the leading 1 sits at bit wf+3.
  int k = 63;
  while (!((s >> k) & 1)) --k;
  std::int64_t exponent = static_cast<std::int64_t>(x.exponent()) + (k - (f.wf + 3));
  u64 s_norm;
  if (k > f.wf + 3) {  // carry out: shift right one, preserve sticky
    s_norm = (s >> 1) | (s & 1);
  } else {
    s_norm = s << ((f.wf + 3) - k);
  }

  const u64 frac_pre = (s_norm >> 3) & f.frac_mask();
  const bool guard = (s_norm >> 2) & 1;
  const bool sticky = (s_norm & 3) != 0;
  const bool lsb = frac_pre & 1;
  const bool round_up = guard && (sticky || lsb);
  u64 mant = ((u64{1} << f.wf) | frac_pre) + (round_up ? 1 : 0);
  if (mant >> (f.wf + 1)) {
    mant >>= 1;
    ++exponent;
  }
  if (exponent < 0) return FpValue::zero(f, x.sign());
  if (exponent > static_cast<std::int64_t>(f.exp_mask())) {
    return FpValue::infinity(f, x.sign());
  }
  return FpValue::from_fields(f, x.sign(), static_cast<u64>(exponent),
                              mant & f.frac_mask());
}

FpValue fp_mac(const FpValue& acc, const FpValue& a, const FpValue& b) {
  return fp_add(acc, fp_mul(a, b));
}

}  // namespace vcgra::softfloat
