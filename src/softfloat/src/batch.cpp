#include "vcgra/softfloat/batch.hpp"

#include "batch_simd.hpp"
#include "fp_core.hpp"

namespace vcgra::softfloat {

namespace {

using fpcore::add_one;
using fpcore::CoeffMul;
using fpcore::decode_one;
using fpcore::encode_one;
using fpcore::Fmt;
using fpcore::mul_one;
using fpcore::mul_one_coeff;
using u64 = std::uint64_t;

/// SIMD kicks in above this length: below it the vector setup (constant
/// broadcasts, dispatch) costs more than it saves.
constexpr std::size_t kSimdThreshold = 32;

bool use_simd(std::size_t n) { return n >= kSimdThreshold && simd::available(); }

}  // namespace

std::uint64_t fp_encode_double(const FpFormat& format, double value) {
  return encode_one(Fmt(format), value);
}

double fp_decode_double(const FpFormat& format, std::uint64_t bits) {
  return decode_one(Fmt(format), bits);
}

void fp_mul_n(const FpFormat& format, const std::uint64_t* a,
              const std::uint64_t* b, std::uint64_t* out, std::size_t n) {
  const Fmt m(format);
  if (use_simd(n)) {
    simd::mul_n(m, a, b, out, n);
    return;
  }
  for (std::size_t i = 0; i < n; ++i) out[i] = mul_one(m, a[i], b[i]);
}

void fp_mul_coeff_n(const FpFormat& format, const std::uint64_t* a,
                    std::uint64_t coeff, std::uint64_t* out, std::size_t n) {
  const Fmt m(format);
  if (use_simd(n)) {
    simd::mul_coeff_n(m, a, coeff, out, n);
    return;
  }
  const CoeffMul c(m, coeff);
  for (std::size_t i = 0; i < n; ++i) out[i] = mul_one_coeff(m, a[i], c);
}

void fp_axpy_n(const FpFormat& format, const std::uint64_t* a,
               const std::uint64_t* x, std::uint64_t coeff,
               std::uint64_t mul_xor, std::uint64_t* out, std::size_t n) {
  const Fmt m(format);
  if (use_simd(n)) {
    simd::axpy_n(m, a, x, coeff, mul_xor, out, n);
    return;
  }
  const CoeffMul c(m, coeff);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = add_one(m, a[i], mul_one_coeff(m, x[i], c) ^ mul_xor);
  }
}

void fp_xpay_n(const FpFormat& format, const std::uint64_t* x,
               std::uint64_t coeff, const std::uint64_t* b,
               std::uint64_t b_xor, std::uint64_t* out, std::size_t n) {
  const Fmt m(format);
  if (use_simd(n)) {
    simd::xpay_n(m, x, coeff, b, b_xor, out, n);
    return;
  }
  const CoeffMul c(m, coeff);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = add_one(m, mul_one_coeff(m, x[i], c), b[i] ^ b_xor);
  }
}

void fp_add_xor_n(const FpFormat& format, const std::uint64_t* a,
                  const std::uint64_t* b, std::uint64_t b_xor,
                  std::uint64_t* out, std::size_t n) {
  const Fmt m(format);
  if (use_simd(n)) {
    simd::add_xor_n(m, a, b, b_xor, out, n);
    return;
  }
  for (std::size_t i = 0; i < n; ++i) out[i] = add_one(m, a[i], b[i] ^ b_xor);
}

std::size_t fp_mac_n(const FpFormat& format, const std::uint64_t* x,
                     std::uint64_t coeff, std::uint32_t count,
                     std::uint64_t* out, std::size_t n,
                     std::uint64_t* acc_bits, std::uint32_t* filled) {
  // The accumulator chain is serial by construction (each step's add
  // consumes the previous step's rounded result), so this stays scalar;
  // the per-step multiply still skips the coefficient re-decode.
  const Fmt m(format);
  const CoeffMul c(m, coeff);
  u64 acc = *acc_bits;
  std::uint32_t fill = *filled;
  std::size_t emitted = 0;
  for (std::size_t i = 0; i < n; ++i) {
    acc = add_one(m, acc, mul_one_coeff(m, x[i], c));
    if (++fill == count) {
      out[emitted++] = acc;
      acc = m.zero(0);
      fill = 0;
    }
  }
  *acc_bits = acc;
  *filled = fill;
  return emitted;
}

void fp_from_double_n(const FpFormat& format, const double* in,
                      std::uint64_t* out, std::size_t n) {
  const Fmt m(format);
  if (use_simd(n)) {
    simd::from_double_n(m, in, out, n);
    return;
  }
  for (std::size_t i = 0; i < n; ++i) out[i] = encode_one(m, in[i]);
}

void fp_to_double_n(const FpFormat& format, const std::uint64_t* in,
                    double* out, std::size_t n) {
  const Fmt m(format);
  if (use_simd(n)) {
    simd::to_double_n(m, in, out, n);
    return;
  }
  for (std::size_t i = 0; i < n; ++i) out[i] = decode_one(m, in[i]);
}

}  // namespace vcgra::softfloat
