// Internal dispatch surface of the SIMD batch kernels (batch_simd.cpp):
// AVX-512 on x86-64, NEON on AArch64, portable stubs elsewhere.
//
// Each function is semantically identical to the scalar loop it replaces
// in batch.cpp: 8 elements per 512-bit lane group (2 per NEON vector),
// with special-class lanes (NaN/inf/zero operands, denormal doubles)
// patched through the shared scalar core so every result stays bit-exact
// with fpformat.cpp. available() is a cached CPUID probe on x86 and
// constant-true on AArch64 (AdvSIMD is mandatory there); callers fall
// back to the portable loops when it reports false (or for formats the
// lanes cannot carry, which the implementations check themselves).
#pragma once

#include <cstddef>
#include <cstdint>

#include "fp_core.hpp"

namespace vcgra::softfloat::simd {

/// True when the host executes AVX-512 F/CD/DQ (cached).
bool available();

void mul_n(const fpcore::Fmt& m, const std::uint64_t* a, const std::uint64_t* b,
           std::uint64_t* out, std::size_t n);
void mul_coeff_n(const fpcore::Fmt& m, const std::uint64_t* a,
                 std::uint64_t coeff, std::uint64_t* out, std::size_t n);
void add_xor_n(const fpcore::Fmt& m, const std::uint64_t* a,
               const std::uint64_t* b, std::uint64_t b_xor, std::uint64_t* out,
               std::size_t n);
void axpy_n(const fpcore::Fmt& m, const std::uint64_t* a,
            const std::uint64_t* x, std::uint64_t coeff, std::uint64_t mul_xor,
            std::uint64_t* out, std::size_t n);
void xpay_n(const fpcore::Fmt& m, const std::uint64_t* x, std::uint64_t coeff,
            const std::uint64_t* b, std::uint64_t b_xor, std::uint64_t* out,
            std::size_t n);
void from_double_n(const fpcore::Fmt& m, const double* in, std::uint64_t* out,
                   std::size_t n);
void to_double_n(const fpcore::Fmt& m, const std::uint64_t* in, double* out,
                 std::size_t n);

}  // namespace vcgra::softfloat::simd
