#include "vcgra/softfloat/fpcircuits.hpp"

#include <stdexcept>

#include "vcgra/common/strings.hpp"

namespace vcgra::softfloat {

using netlist::Bus;
using netlist::NetId;
using netlist::NetlistBuilder;

namespace {

Bus slice_bus(const Bus& bus, int lo, int width) {
  Bus out;
  out.reserve(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) out.push_back(bus[static_cast<std::size_t>(lo + i)]);
  return out;
}

Bus concat(const Bus& low, const Bus& high) {
  Bus out = low;
  out.insert(out.end(), high.begin(), high.end());
  return out;
}

Bus zero_extend(NetlistBuilder& b, const Bus& bus, int width) {
  Bus out = bus;
  while (static_cast<int>(out.size()) < width) out.push_back(b.const_bit(false));
  return out;
}

/// Two's-complement a - b over `width` bits (operands zero-extended).
Bus sub_wide(NetlistBuilder& b, const Bus& a, const Bus& bb, int width) {
  return b.ripple_sub(zero_extend(b, a, width), zero_extend(b, bb, width));
}

Bus add_wide(NetlistBuilder& b, const Bus& a, const Bus& bb, int width) {
  return b.ripple_add(zero_extend(b, a, width), zero_extend(b, bb, width),
                      b.const_bit(false));
}

}  // namespace

FpSlices fp_slice(NetlistBuilder& builder, FpFormat format, const Bus& bus) {
  if (static_cast<int>(bus.size()) != format.total_bits()) {
    throw std::invalid_argument("fp_slice: bus width mismatch");
  }
  FpSlices s;
  s.frac = slice_bus(bus, 0, format.wf);
  s.exp = slice_bus(bus, format.wf, format.we);
  s.sign = bus[static_cast<std::size_t>(format.wf + format.we)];
  s.exc0 = bus[static_cast<std::size_t>(format.wf + format.we + 1)];
  s.exc1 = bus[static_cast<std::size_t>(format.wf + format.we + 2)];
  s.is_zero = builder.nor_(s.exc1, s.exc0);
  s.is_normal = builder.and_(builder.not_(s.exc1), s.exc0);
  s.is_inf = builder.and_(s.exc1, builder.not_(s.exc0));
  s.is_nan = builder.and_(s.exc1, s.exc0);
  return s;
}

Bus fp_assemble(NetlistBuilder& builder, FpFormat format, NetId exc1, NetId exc0,
                NetId sign, const Bus& exp, const Bus& frac) {
  (void)builder;
  if (static_cast<int>(exp.size()) != format.we ||
      static_cast<int>(frac.size()) != format.wf) {
    throw std::invalid_argument("fp_assemble: field width mismatch");
  }
  Bus out = frac;
  out.insert(out.end(), exp.begin(), exp.end());
  out.push_back(sign);
  out.push_back(exc0);
  out.push_back(exc1);
  return out;
}

Bus fp_const(NetlistBuilder& builder, const FpValue& value) {
  return builder.const_bus(value.bits(), value.format().total_bits());
}

Bus build_fp_multiplier(NetlistBuilder& b, FpFormat f, const Bus& a, const Bus& bb) {
  const FpSlices sa = fp_slice(b, f, a);
  const FpSlices sb = fp_slice(b, f, bb);
  const NetId sign = b.xor_(sa.sign, sb.sign);

  // Significands 1.frac (wf+1 bits).
  Bus ma = sa.frac;
  ma.push_back(b.const_bit(true));
  Bus mb = sb.frac;
  mb.push_back(b.const_bit(true));
  const Bus product = b.array_multiply(ma, mb);  // 2wf+2 bits

  const NetId top = product[static_cast<std::size_t>(2 * f.wf + 1)];
  const Bus frac_top = slice_bus(product, f.wf + 1, f.wf);
  const Bus frac_bot = slice_bus(product, f.wf, f.wf);
  const NetId guard_top = product[static_cast<std::size_t>(f.wf)];
  const NetId guard_bot = product[static_cast<std::size_t>(f.wf - 1)];
  const NetId sticky_top = b.reduce_or(slice_bus(product, 0, f.wf));
  const NetId sticky_bot = b.reduce_or(slice_bus(product, 0, f.wf - 1));

  const Bus frac_pre = b.mux_bus(top, frac_bot, frac_top);
  const NetId guard = b.mux_(top, guard_bot, guard_top);
  const NetId sticky = b.mux_(top, sticky_bot, sticky_top);
  const NetId lsb = frac_pre[0];
  const NetId round_up = b.and_(guard, b.or_(sticky, lsb));

  // frac_pre + round_up; a carry-out means the significand rolled over to
  // 10.00..0, i.e. fraction zero and exponent +1.
  NetId round_carry = netlist::kNullNet;
  const Bus frac_rounded =
      b.ripple_add(frac_pre, b.const_bus(0, f.wf), round_up, &round_carry);

  // Exponent: ea + eb - bias + top + round_carry over we+2 bits (signed).
  const int ew = f.we + 2;
  Bus e = add_wide(b, sa.exp, sb.exp, ew);
  e = b.ripple_sub(e, b.const_bus(static_cast<std::uint64_t>(f.bias()), ew));
  Bus inc(1);
  inc[0] = top;
  e = add_wide(b, e, inc, ew);
  inc[0] = round_carry;
  e = add_wide(b, e, inc, ew);
  const NetId underflow = e[static_cast<std::size_t>(ew - 1)];  // negative
  const NetId overflow = b.and_(b.not_(underflow), e[static_cast<std::size_t>(f.we)]);

  // Exception resolution.
  const NetId both_normal = b.and_(sa.is_normal, sb.is_normal);
  const NetId nan_res = b.or_(
      b.or_(sa.is_nan, sb.is_nan),
      b.or_(b.and_(sa.is_inf, sb.is_zero), b.and_(sa.is_zero, sb.is_inf)));
  const NetId inf_in = b.or_(sa.is_inf, sb.is_inf);
  const NetId inf_res =
      b.and_(b.not_(nan_res), b.or_(inf_in, b.and_(both_normal, overflow)));
  const NetId zero_in = b.or_(sa.is_zero, sb.is_zero);
  const NetId zero_res =
      b.and_(b.not_(nan_res),
             b.and_(b.not_(inf_res),
                    b.or_(zero_in, b.and_(both_normal, underflow))));
  const NetId normal_res =
      b.and_(b.not_(nan_res), b.and_(b.not_(inf_res), b.not_(zero_res)));

  const NetId exc1 = b.or_(nan_res, inf_res);
  const NetId exc0 = b.or_(nan_res, normal_res);
  const NetId out_sign = b.and_(b.not_(nan_res), sign);
  Bus out_exp(static_cast<std::size_t>(f.we));
  Bus out_frac(static_cast<std::size_t>(f.wf));
  for (int i = 0; i < f.we; ++i) {
    out_exp[static_cast<std::size_t>(i)] =
        b.and_(normal_res, e[static_cast<std::size_t>(i)]);
  }
  for (int i = 0; i < f.wf; ++i) {
    out_frac[static_cast<std::size_t>(i)] =
        b.and_(normal_res, frac_rounded[static_cast<std::size_t>(i)]);
  }
  return fp_assemble(b, f, exc1, exc0, out_sign, out_exp, out_frac);
}

Bus build_fp_adder(NetlistBuilder& b, FpFormat f, const Bus& a, const Bus& bb) {
  const FpSlices sa = fp_slice(b, f, a);
  const FpSlices sb = fp_slice(b, f, bb);

  // --- operand ordering by magnitude (exp,frac) ---------------------------
  const Bus mag_a = concat(sa.frac, sa.exp);
  const Bus mag_b = concat(sb.frac, sb.exp);
  const NetId a_lt_b = b.less_than(mag_a, mag_b);
  const NetId a_ge_b = b.not_(a_lt_b);
  const Bus exp_x = b.mux_bus(a_ge_b, sb.exp, sa.exp);
  const Bus exp_y = b.mux_bus(a_ge_b, sa.exp, sb.exp);
  const Bus frac_x = b.mux_bus(a_ge_b, sb.frac, sa.frac);
  const Bus frac_y = b.mux_bus(a_ge_b, sa.frac, sb.frac);
  const NetId sign_x = b.mux_(a_ge_b, sb.sign, sa.sign);
  const NetId sign_y = b.mux_(a_ge_b, sa.sign, sb.sign);

  // --- alignment -----------------------------------------------------------
  const Bus d = b.ripple_sub(exp_x, exp_y);  // >= 0 by construction
  const int width = f.wf + 4;                // |1.frac| + 3 guard bits
  // Shift amount bus: enough bits to express `width`, saturated.
  int amt_bits = 1;
  while ((1 << amt_bits) < width + 1) ++amt_bits;
  const NetId big_shift =
      b.not_(b.less_than(d, b.const_bus(static_cast<std::uint64_t>(width), f.we)));
  Bus d_clamped(static_cast<std::size_t>(amt_bits));
  for (int i = 0; i < amt_bits; ++i) {
    const NetId bit = i < f.we ? d[static_cast<std::size_t>(i)] : b.const_bit(false);
    d_clamped[static_cast<std::size_t>(i)] = b.mux_(
        big_shift, bit,
        b.const_bit((static_cast<unsigned>(width) >> i) & 1));
  }

  Bus mx(static_cast<std::size_t>(width), b.const_bit(false));
  Bus my_full(static_cast<std::size_t>(width), b.const_bit(false));
  for (int i = 0; i < f.wf; ++i) {
    mx[static_cast<std::size_t>(i + 3)] = frac_x[static_cast<std::size_t>(i)];
    my_full[static_cast<std::size_t>(i + 3)] = frac_y[static_cast<std::size_t>(i)];
  }
  mx[static_cast<std::size_t>(f.wf + 3)] = b.const_bit(true);
  my_full[static_cast<std::size_t>(f.wf + 3)] = b.const_bit(true);

  const Bus my_shifted = b.shift_right(my_full, d_clamped);
  // Sticky for shifted-out bits: shift back and compare.
  const Bus shifted_back = b.shift_left(my_shifted, d_clamped);
  const NetId sticky_lost = b.not_(b.equal(shifted_back, my_full));
  Bus my = my_shifted;
  my[0] = b.or_(my[0], sticky_lost);

  // --- add / subtract ------------------------------------------------------
  const NetId eff_sub = b.xor_(sign_x, sign_y);
  const int sw = width + 1;  // wf+5 bits
  const Bus sum = add_wide(b, mx, my, sw);
  const Bus diff = sub_wide(b, mx, my, sw);
  const Bus s = b.mux_bus(eff_sub, sum, diff);
  const NetId s_zero = b.not_(b.reduce_or(s));

  // --- normalization -------------------------------------------------------
  const Bus lzc = b.leading_zero_count(s);
  // lzc == 0 -> carry out: shift right 1, preserve sticky.
  const NetId carry_case = b.not_(b.reduce_or(lzc));
  Bus s_right(static_cast<std::size_t>(sw), b.const_bit(false));
  for (int i = 0; i + 1 < sw; ++i) {
    s_right[static_cast<std::size_t>(i)] = s[static_cast<std::size_t>(i + 1)];
  }
  s_right[0] = b.or_(s_right[0], s[0]);
  // Otherwise shift left by lzc-1.
  const Bus lzc_minus1 = b.ripple_sub(lzc, b.const_bus(1, static_cast<int>(lzc.size())));
  const Bus s_left = b.shift_left(s, lzc_minus1);
  const Bus s_norm = b.mux_bus(carry_case, s_left, s_right);

  // Exponent: exp_x + 1 - lzc over we+2 signed bits.
  const int ew = f.we + 2;
  Bus e = add_wide(b, exp_x, Bus{b.const_bit(true)}, ew);
  e = b.ripple_sub(e, zero_extend(b, lzc, ew));

  // --- rounding ------------------------------------------------------------
  const Bus frac_pre = slice_bus(s_norm, 3, f.wf);
  const NetId guard = s_norm[2];
  const NetId sticky = b.or_(s_norm[1], s_norm[0]);
  const NetId lsb = frac_pre[0];
  const NetId round_up = b.and_(guard, b.or_(sticky, lsb));
  NetId round_carry = netlist::kNullNet;
  const Bus frac_rounded =
      b.ripple_add(frac_pre, b.const_bus(0, f.wf), round_up, &round_carry);
  Bus inc(1);
  inc[0] = round_carry;
  e = add_wide(b, e, inc, ew);

  const NetId underflow = e[static_cast<std::size_t>(ew - 1)];
  const NetId overflow = b.and_(b.not_(underflow), e[static_cast<std::size_t>(f.we)]);

  // --- normal-path result --------------------------------------------------
  const NetId norm_zero = b.or_(s_zero, b.and_(b.not_(s_zero), underflow));
  const NetId norm_inf = b.and_(b.not_(norm_zero), overflow);
  const NetId norm_ok = b.nor_(norm_zero, norm_inf);
  const NetId norm_sign = b.and_(b.not_(s_zero), sign_x);  // exact cancel -> +0
  const NetId n_exc1 = norm_inf;
  const NetId n_exc0 = norm_ok;
  Bus n_exp(static_cast<std::size_t>(f.we));
  Bus n_frac(static_cast<std::size_t>(f.wf));
  for (int i = 0; i < f.we; ++i) {
    n_exp[static_cast<std::size_t>(i)] = b.and_(norm_ok, e[static_cast<std::size_t>(i)]);
  }
  for (int i = 0; i < f.wf; ++i) {
    n_frac[static_cast<std::size_t>(i)] =
        b.and_(norm_ok, frac_rounded[static_cast<std::size_t>(i)]);
  }
  const Bus normal_bus = fp_assemble(b, f, n_exc1, n_exc0, norm_sign, n_exp, n_frac);

  // --- special-path result (at least one operand exceptional) --------------
  const FpFormat fmt = f;
  const Bus nan_bus = fp_const(b, FpValue::nan(fmt));
  const Bus pzero_bus = fp_const(b, FpValue::zero(fmt));
  const Bus nzero_bus = fp_const(b, FpValue::zero(fmt, true));
  const NetId opposite_infs =
      b.and_(b.and_(sa.is_inf, sb.is_inf), b.xor_(sa.sign, sb.sign));
  const NetId special_nan = b.or_(b.or_(sa.is_nan, sb.is_nan), opposite_infs);
  const NetId both_zero = b.and_(sa.is_zero, sb.is_zero);
  const NetId zz_sign = b.and_(sa.sign, sb.sign);
  const Bus zz_bus = b.mux_bus(zz_sign, pzero_bus, nzero_bus);
  // Priority: nan > a.inf(a) > b.inf(b) > both_zero > a.zero(b) > (b.zero) a.
  Bus special = a;                                 // covers b.zero -> a
  special = b.mux_bus(sa.is_zero, special, bb);    // a.zero -> b
  special = b.mux_bus(both_zero, special, zz_bus);
  special = b.mux_bus(sb.is_inf, special, bb);
  special = b.mux_bus(sa.is_inf, special, a);
  special = b.mux_bus(special_nan, special, nan_bus);

  const NetId both_normal = b.and_(sa.is_normal, sb.is_normal);
  return b.mux_bus(both_normal, special, normal_bus);
}

MacPe build_mac_pe(FpFormat format, PeStyle style, int counter_bits) {
  MacPe pe;
  pe.netlist = netlist::Netlist(style == PeStyle::kParameterized
                                    ? "mac_pe_parameterized"
                                    : "mac_pe_conventional");
  NetlistBuilder b(pe.netlist);

  pe.x = b.input_bus("x", format.total_bits());
  pe.enable = pe.netlist.add_input("enable");
  if (style == PeStyle::kParameterized) {
    pe.coeff = b.param_bus("coeff", format.total_bits());
    pe.count = b.param_bus("count", counter_bits);
  } else {
    pe.coeff = b.input_bus("coeff", format.total_bits());
    pe.count = b.input_bus("count", counter_bits);
  }

  // Accumulator register; +0 encodes as all-zero bits, so init=0 works.
  std::vector<std::pair<netlist::NetId, netlist::CellId>> acc_ffs;
  Bus acc_q(static_cast<std::size_t>(format.total_bits()));
  for (int i = 0; i < format.total_bits(); ++i) {
    const auto [q, cell] = pe.netlist.add_dff_floating(
        false, common::strprintf("acc[%d]", i));
    acc_q[static_cast<std::size_t>(i)] = q;
    acc_ffs.emplace_back(q, cell);
  }
  std::vector<std::pair<netlist::NetId, netlist::CellId>> ctr_ffs;
  Bus ctr_q(static_cast<std::size_t>(counter_bits));
  for (int i = 0; i < counter_bits; ++i) {
    const auto [q, cell] = pe.netlist.add_dff_floating(
        false, common::strprintf("ctr[%d]", i));
    ctr_q[static_cast<std::size_t>(i)] = q;
    ctr_ffs.emplace_back(q, cell);
  }

  const Bus product = build_fp_multiplier(b, format, pe.x, pe.coeff);
  const Bus sum = build_fp_adder(b, format, acc_q, product);

  const Bus ctr_next_inc = b.increment(ctr_q);
  pe.done = b.and_(pe.enable, b.equal(ctr_next_inc, pe.count));

  // next_acc: restart from zero after `done`, hold when disabled.
  const Bus acc_hold = b.mux_bus(pe.enable, acc_q, sum);
  const Bus acc_next =
      b.mux_bus(pe.done, acc_hold, b.const_bus(0, format.total_bits()));
  const Bus ctr_hold = b.mux_bus(pe.enable, ctr_q, ctr_next_inc);
  const Bus ctr_next = b.mux_bus(pe.done, ctr_hold, b.const_bus(0, counter_bits));

  for (int i = 0; i < format.total_bits(); ++i) {
    pe.netlist.connect_dff(acc_ffs[static_cast<std::size_t>(i)].second,
                           acc_next[static_cast<std::size_t>(i)]);
  }
  for (int i = 0; i < counter_bits; ++i) {
    pe.netlist.connect_dff(ctr_ffs[static_cast<std::size_t>(i)].second,
                           ctr_next[static_cast<std::size_t>(i)]);
  }

  pe.acc = acc_q;
  b.mark_output_bus(pe.acc);
  pe.netlist.mark_output(pe.done);
  pe.netlist.validate();
  return pe;
}

}  // namespace vcgra::softfloat
