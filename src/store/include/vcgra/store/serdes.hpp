// Versioned, endian-stable binary (de)serialization for compiled overlay
// artifacts — the wire format of the persistent overlay store.
//
// Every record is framed:
//
//   magic "VCOS" | u32 format version | u32 record kind | u32 reserved
//   u64 payload size | u64 FNV-1a-64 payload checksum | payload bytes
//
// with all integers little-endian regardless of host, doubles carried as
// their IEEE-754 bit patterns, and strings length-prefixed. Loads
// hard-reject anything suspect with a *typed* error instead of undefined
// behavior: a version bump raises VersionMismatch, a short buffer raises
// TruncatedRecord, and any flipped payload byte fails the checksum and
// raises CorruptRecord (asserted exhaustively by test_store's fuzz).
// Round-trips are bit-identical: serialize(deserialize(bytes)) == bytes,
// and a deserialized structure specializes to the same register words as
// the in-memory original.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "vcgra/vcgra/compiler.hpp"

namespace vcgra::store {

/// Bumped whenever the record layout changes; old records are rejected,
/// never misread (the store falls back to a cold compile).
inline constexpr std::uint32_t kFormatVersion = 1;

class StoreError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The buffer ended before the record did (short read, torn file).
class TruncatedRecord final : public StoreError {
 public:
  using StoreError::StoreError;
};

/// Bad magic, failed checksum, wrong record kind, or a decoded value
/// that violates a structural invariant.
class CorruptRecord final : public StoreError {
 public:
  using StoreError::StoreError;
};

/// The record was written by a different format version.
class VersionMismatch final : public StoreError {
 public:
  VersionMismatch(std::uint32_t found, std::uint32_t expected);
  std::uint32_t found() const { return found_; }
  std::uint32_t expected() const { return expected_; }

 private:
  std::uint32_t found_;
  std::uint32_t expected_;
};

/// FNV-1a 64-bit over a byte range (the per-record checksum, and the
/// store's record-file naming hash).
std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t size);
std::uint64_t fnv1a64(const std::string& text);

/// Little-endian primitive encoder. Appends to an internal buffer.
class ByteWriter {
 public:
  void u8(std::uint8_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v);
  void f64(double v);  // IEEE-754 bit pattern, bit-exact round trip
  void str(const std::string& s);

  const std::vector<std::uint8_t>& buffer() const { return buffer_; }
  std::vector<std::uint8_t> take() { return std::move(buffer_); }

 private:
  std::vector<std::uint8_t> buffer_;
};

/// Little-endian primitive decoder over a borrowed buffer. Every read
/// past the end throws TruncatedRecord.
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int32_t i32();
  double f64();
  std::string str();
  /// Element-count prefix for a container whose elements occupy at least
  /// `min_element_bytes`; rejects counts the remaining bytes cannot hold
  /// (so a corrupt length cannot drive a giant allocation).
  std::size_t count(std::size_t min_element_bytes);

  std::size_t remaining() const { return size_ - offset_; }
  bool done() const { return offset_ == size_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t offset_ = 0;
};

enum class RecordKind : std::uint32_t {
  kStructure = 1,   // payload = CompiledStructure
  kCompiled = 2,    // payload = Compiled
  kStoreEntry = 3,  // payload = structure_key string + CompiledStructure
};

/// Frame `payload` with the header above (version kFormatVersion).
std::vector<std::uint8_t> wrap_record(RecordKind kind,
                                      std::vector<std::uint8_t> payload);

/// Validate the frame (magic, version, kind, size, checksum) and return
/// the payload. Throws the typed errors documented above.
std::vector<std::uint8_t> unwrap_record(const std::uint8_t* data,
                                        std::size_t size, RecordKind expected);

// Field-level encoders (compose into larger payloads, e.g. the store's
// key-prefixed records).
void encode(ByteWriter& w, const overlay::CompiledStructure& structure);
void encode(ByteWriter& w, const overlay::Compiled& compiled);
overlay::CompiledStructure decode_structure(ByteReader& r);
overlay::Compiled decode_compiled(ByteReader& r);

// Whole-record conveniences (frame included).
std::vector<std::uint8_t> serialize(const overlay::CompiledStructure& structure);
std::vector<std::uint8_t> serialize(const overlay::Compiled& compiled);
overlay::CompiledStructure deserialize_structure(
    const std::vector<std::uint8_t>& bytes);
overlay::Compiled deserialize_compiled(const std::vector<std::uint8_t>& bytes);

}  // namespace vcgra::store
