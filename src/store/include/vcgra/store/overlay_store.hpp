// Persistent overlay library: a directory of versioned structure records
// keyed by the runtime's canonical structure key.
//
// Layout under the store directory:
//
//   <fnv1a64(key) as hex>[-probe].ovl   one framed record per structure
//                                       (payload = key string + body)
//   index.tsv                           advisory heat index: a `#gen N`
//                                       header (store-open generation),
//                                       then filename, use count and
//                                       last-used generation per line
//
// Records are immutable once published and are published atomically:
// writers serialize into a `.tmp-<pid>-<seq>` file in the same directory
// and rename() it over the final name, so a concurrent reader — another
// service sharing the store — sees either nothing or a complete record,
// never a torn write. Two services compiling the same key race benignly:
// compile_structure is deterministic, both produce bit-identical records,
// last rename wins. The filename hash is only a shortcut — every record
// embeds its full key, lookups verify it, and hash collisions fall
// through to probe suffixes.
//
// The index is a *cache of heat*, not a source of truth: list() always
// scans the directory for records, and a lost index update merely costs
// warm-start ordering quality. It is rewritten with the same
// write-then-rename dance (last writer wins).
#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "vcgra/store/serdes.hpp"

namespace vcgra::store {

class OverlayStore {
 public:
  /// Opens (creating if needed) a store directory and reads its index.
  /// Throws StoreError when the directory cannot be created.
  explicit OverlayStore(std::filesystem::path directory);

  /// Flushes the heat index.
  ~OverlayStore();

  OverlayStore(const OverlayStore&) = delete;
  OverlayStore& operator=(const OverlayStore&) = delete;

  const std::filesystem::path& directory() const { return directory_; }

  /// Load the record for `structure_key`. Returns nullptr when the store
  /// has no record for the key; throws the serdes typed errors
  /// (VersionMismatch / TruncatedRecord / CorruptRecord) when a record
  /// exists but cannot be trusted — callers decide whether that is fatal
  /// (the CLI's --verify) or a fallback to a cold compile (the cache).
  std::shared_ptr<const overlay::CompiledStructure> load(
      const std::string& structure_key);

  /// load() with errors converted into a miss; `error`, when given,
  /// receives the typed error's message (empty on a clean miss).
  std::shared_ptr<const overlay::CompiledStructure> try_load(
      const std::string& structure_key, std::string* error = nullptr);

  /// Publish a structure under its key (atomic write-then-rename).
  /// Returns false when an intact record for the key already exists (it
  /// is not rewritten); a corrupt or version-stale record at the key's
  /// slot is repaired in place. Throws StoreError on I/O failure.
  bool save(const std::string& structure_key,
            const overlay::CompiledStructure& structure);

  bool contains(const std::string& structure_key);

  /// Bump the heat of a key's record (kept in memory; flushed by
  /// flush_index()/destructor). Unknown keys are ignored.
  void add_uses(const std::string& structure_key, std::uint64_t delta);

  struct RecordInfo {
    std::string filename;     // record file name within the directory
    std::uint64_t uses = 0;   // advisory heat from the index
    std::uint64_t bytes = 0;  // record file size
    /// Generation (store open count) the record was last loaded, saved
    /// or heat-bumped in; 0 when the index never saw it touched.
    std::uint64_t last_used = 0;
  };

  /// Every record file currently in the directory (directory scan joined
  /// with the heat index), hottest first (ties: filename order).
  std::vector<RecordInfo> list() const;

  struct LoadedRecord {
    std::string structure_key;
    std::shared_ptr<const overlay::CompiledStructure> structure;
  };

  /// Load one record by file name (for warm starts / --verify, which walk
  /// list()). Throws the serdes typed errors; StoreError when unreadable.
  LoadedRecord load_record(const std::string& filename) const;

  /// Rewrite index.tsv from the in-memory heat map (atomic rename).
  void flush_index();

  /// Number of record files currently in the directory.
  std::size_t size() const { return list().size(); }

  /// This store handle's generation: the persisted open count, bumped
  /// once per OverlayStore construction. Records stamp it when touched,
  /// which is what GcOptions::unused_runs ages against.
  std::uint64_t generation() const { return generation_; }

  struct GcOptions {
    /// Drop records whose last touch is more than this many store opens
    /// ago (records the index never saw touched count as infinitely
    /// old). 0 disables the age rule.
    std::uint64_t unused_runs = 0;
    /// After the age rule, evict coldest-first until the records left
    /// fit this many bytes. 0 disables the budget rule.
    std::uint64_t max_bytes = 0;
  };

  struct GcReport {
    std::size_t scanned = 0;          // record files considered
    std::size_t removed = 0;          // record files unlinked
    std::uint64_t bytes_removed = 0;
    std::uint64_t bytes_kept = 0;     // surviving record bytes
  };

  /// Collect cold records per `options` and flush the pruned index.
  /// Removal is unlink-based and safe against concurrent services: a
  /// reader mid-load keeps its open file; a service that misses a
  /// collected record falls back to a cold compile and re-saves it (the
  /// repair path test_store exercises). Probe chains stay sound — when a
  /// record is dropped, every deeper probe of its hash slot (which would
  /// become unreachable) is dropped with it.
  GcReport gc(const GcOptions& options);

 private:
  /// Record filename for `key` at a probe depth (collision chain).
  static std::string record_filename(const std::string& key, int probe);
  std::vector<std::uint8_t> read_file(const std::filesystem::path& path) const;
  void write_file_atomic(const std::filesystem::path& final_path,
                         const std::vector<std::uint8_t>& bytes);
  /// Extract the embedded key of a record buffer (frame-validated).
  static std::string record_key(const std::vector<std::uint8_t>& bytes);

  /// Stamp a record's heat entry as touched this generation (callers
  /// hold mutex_).
  void touch_locked(const std::string& filename) const;

  std::filesystem::path directory_;
  /// Guards only the in-memory maps below; record I/O and
  /// (de)serialization run outside it — write-then-rename publication
  /// already makes concurrent readers/writers safe, so the disk tier
  /// never serializes a cold burst behind one lock.
  mutable std::mutex mutex_;
  mutable std::map<std::string, std::uint64_t> uses_;      // filename -> heat
  mutable std::map<std::string, std::uint64_t> last_used_; // filename -> gen
  mutable std::map<std::string, std::string> file_of_key_; // resolved key -> filename
  std::uint64_t generation_ = 1;
  std::atomic<std::uint64_t> temp_sequence_{0};
};

}  // namespace vcgra::store
