#include "vcgra/store/overlay_store.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <system_error>

#include "vcgra/common/strings.hpp"
#include "vcgra/telemetry/metrics.hpp"
#include "vcgra/telemetry/trace.hpp"

namespace vcgra::store {

namespace fs = std::filesystem;

namespace {

constexpr const char* kIndexFile = "index.tsv";
constexpr const char* kRecordSuffix = ".ovl";
constexpr int kMaxProbes = 64;  // collision-chain bound (fnv64 makes >0 rare)

bool is_record_name(const std::string& name) {
  return name.size() > 4 && name.rfind(kRecordSuffix) == name.size() - 4 &&
         name[0] != '.';
}

/// Disk-tier traffic, process-wide (a store can be shared by several
/// services). Load covers read + deserialize; save covers serialize +
/// atomic publish, usually paid on the cache's write-behind thread.
struct StoreMetrics {
  telemetry::Counter& loads = telemetry::metrics().counter("store.loads");
  telemetry::Counter& load_misses =
      telemetry::metrics().counter("store.load_misses");
  telemetry::Counter& saves = telemetry::metrics().counter("store.saves");
  telemetry::LatencyHistogram& load =
      telemetry::metrics().histogram("store.load");
  telemetry::LatencyHistogram& save =
      telemetry::metrics().histogram("store.save");
};

StoreMetrics& store_metrics() {
  static StoreMetrics* m = new StoreMetrics();  // registry refs never dangle
  return *m;
}

}  // namespace

OverlayStore::OverlayStore(fs::path directory) : directory_(std::move(directory)) {
  std::error_code ec;
  fs::create_directories(directory_, ec);
  if (ec || !fs::is_directory(directory_)) {
    throw StoreError(common::strprintf("overlay store: cannot create '%s': %s",
                                       directory_.string().c_str(),
                                       ec.message().c_str()));
  }
  // Advisory heat index; ignore anything malformed (it is rebuilt on
  // flush and the directory scan is the source of truth for records).
  // Lines are `filename\tuses[\tlast_used_gen]` — the third column and
  // the `#gen\t<N>` generation header are newer additions, so an index
  // written by an older build parses as generation 0 / never-touched.
  std::ifstream index(directory_ / kIndexFile);
  std::string line;
  std::uint64_t persisted_gen = 0;
  while (std::getline(index, line)) {
    const auto tab = line.find('\t');
    if (tab == std::string::npos || tab == 0) continue;
    const std::string filename = line.substr(0, tab);
    char* end = nullptr;
    const unsigned long long uses =
        std::strtoull(line.c_str() + tab + 1, &end, 10);
    if (end == line.c_str() + tab + 1) continue;
    if (filename == "#gen") {
      persisted_gen = uses;
      continue;
    }
    if (!is_record_name(filename)) continue;
    uses_[filename] = uses;
    if (end && *end == '\t') {
      char* gen_end = nullptr;
      const unsigned long long gen = std::strtoull(end + 1, &gen_end, 10);
      if (gen_end != end + 1) last_used_[filename] = gen;
    }
  }
  generation_ = persisted_gen + 1;  // this open is a new run
}

OverlayStore::~OverlayStore() {
  try {
    flush_index();
  } catch (const StoreError&) {
    // Heat is advisory; never let index I/O failures escape a destructor.
  }
}

std::string OverlayStore::record_filename(const std::string& key, int probe) {
  const std::uint64_t hash = fnv1a64(key);
  if (probe == 0) {
    return common::strprintf("%016llx%s",
                             static_cast<unsigned long long>(hash),
                             kRecordSuffix);
  }
  return common::strprintf("%016llx-%d%s",
                           static_cast<unsigned long long>(hash), probe,
                           kRecordSuffix);
}

std::vector<std::uint8_t> OverlayStore::read_file(const fs::path& path) const {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw StoreError("overlay store: cannot read '" + path.string() + "'");
  }
  std::vector<std::uint8_t> bytes{std::istreambuf_iterator<char>(in),
                                  std::istreambuf_iterator<char>()};
  if (in.bad()) {
    throw StoreError("overlay store: read failed for '" + path.string() + "'");
  }
  return bytes;
}

void OverlayStore::write_file_atomic(const fs::path& final_path,
                                     const std::vector<std::uint8_t>& bytes) {
  const fs::path temp =
      directory_ / common::strprintf(".tmp-%d-%llu",
                                     static_cast<int>(::getpid()),
                                     static_cast<unsigned long long>(
                                         temp_sequence_.fetch_add(1) + 1));
  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw StoreError("overlay store: cannot write '" + temp.string() + "'");
    }
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      std::error_code ec;
      fs::remove(temp, ec);
      throw StoreError("overlay store: short write to '" + temp.string() + "'");
    }
  }
  std::error_code ec;
  fs::rename(temp, final_path, ec);  // atomic publication (same directory)
  if (ec) {
    fs::remove(temp, ec);
    throw StoreError("overlay store: cannot publish '" + final_path.string() +
                     "'");
  }
}

std::string OverlayStore::record_key(const std::vector<std::uint8_t>& bytes) {
  const std::vector<std::uint8_t> payload =
      unwrap_record(bytes.data(), bytes.size(), RecordKind::kStoreEntry);
  ByteReader reader(payload.data(), payload.size());
  return reader.str();
}

std::shared_ptr<const overlay::CompiledStructure> OverlayStore::load(
    const std::string& structure_key) {
  for (int probe = 0; probe < kMaxProbes; ++probe) {
    const std::string filename = record_filename(structure_key, probe);
    const fs::path path = directory_ / filename;
    std::error_code ec;
    if (!fs::exists(path, ec)) return nullptr;  // end of the probe chain
    const std::vector<std::uint8_t> bytes = read_file(path);
    const std::vector<std::uint8_t> payload =
        unwrap_record(bytes.data(), bytes.size(), RecordKind::kStoreEntry);
    ByteReader reader(payload.data(), payload.size());
    if (reader.str() != structure_key) continue;  // hash collision, next probe
    auto structure = std::make_shared<overlay::CompiledStructure>(
        decode_structure(reader));
    if (!reader.done()) {
      throw CorruptRecord("overlay record corrupt: trailing payload bytes");
    }
    std::lock_guard<std::mutex> lock(mutex_);
    file_of_key_[structure_key] = filename;
    touch_locked(filename);
    return structure;
  }
  return nullptr;
}

void OverlayStore::touch_locked(const std::string& filename) const {
  last_used_[filename] = generation_;
}

std::shared_ptr<const overlay::CompiledStructure> OverlayStore::try_load(
    const std::string& structure_key, std::string* error) {
  VCGRA_TRACE_SPAN("store.load");
  const std::uint64_t start_ns = telemetry::trace_now_ns();
  if (error) error->clear();
  std::shared_ptr<const overlay::CompiledStructure> structure;
  try {
    structure = load(structure_key);
  } catch (const StoreError& e) {
    if (error) *error = e.what();
  }
  if (structure) {
    store_metrics().loads.add();
    store_metrics().load.record_ns(telemetry::trace_now_ns() - start_ns);
  } else {
    store_metrics().load_misses.add();
  }
  return structure;
}

bool OverlayStore::save(const std::string& structure_key,
                        const overlay::CompiledStructure& structure) {
  VCGRA_TRACE_SPAN("store.save");
  const std::uint64_t start_ns = telemetry::trace_now_ns();
  for (int probe = 0; probe < kMaxProbes; ++probe) {
    const std::string filename = record_filename(structure_key, probe);
    const fs::path path = directory_ / filename;
    std::error_code ec;
    if (fs::exists(path, ec)) {
      try {
        if (record_key(read_file(path)) == structure_key) {
          std::lock_guard<std::mutex> lock(mutex_);
          file_of_key_[structure_key] = filename;
          touch_locked(filename);
          return false;  // intact record already published
        }
        continue;  // hash collision with a different key: next probe
      } catch (const StoreError&) {
        // Corrupt or version-stale record squatting on our slot: repair
        // it in place (the rename below replaces it atomically).
      }
    }
    ByteWriter payload;
    payload.str(structure_key);
    encode(payload, structure);
    write_file_atomic(path,
                      wrap_record(RecordKind::kStoreEntry, payload.take()));
    store_metrics().saves.add();
    store_metrics().save.record_ns(telemetry::trace_now_ns() - start_ns);
    std::lock_guard<std::mutex> lock(mutex_);
    file_of_key_[structure_key] = filename;
    uses_[filename] += 1;
    touch_locked(filename);
    return true;
  }
  throw StoreError("overlay store: record probe chain exhausted");
}

bool OverlayStore::contains(const std::string& structure_key) {
  std::string error;
  return try_load(structure_key, &error) != nullptr;
}

void OverlayStore::add_uses(const std::string& structure_key,
                            std::uint64_t delta) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = file_of_key_.find(structure_key);
  if (it == file_of_key_.end()) return;  // never resolved through this store
  uses_[it->second] += delta;
  touch_locked(it->second);
}

std::vector<OverlayStore::RecordInfo> OverlayStore::list() const {
  std::map<std::string, std::uint64_t> heat;
  std::map<std::string, std::uint64_t> last;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    heat = uses_;
    last = last_used_;
  }
  std::vector<RecordInfo> records;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(directory_, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (!is_record_name(name)) continue;
    RecordInfo info;
    info.filename = name;
    const auto uses = heat.find(name);
    info.uses = uses == heat.end() ? 0 : uses->second;
    const auto used = last.find(name);
    info.last_used = used == last.end() ? 0 : used->second;
    std::error_code size_ec;
    info.bytes = static_cast<std::uint64_t>(entry.file_size(size_ec));
    records.push_back(std::move(info));
  }
  std::sort(records.begin(), records.end(),
            [](const RecordInfo& a, const RecordInfo& b) {
              if (a.uses != b.uses) return a.uses > b.uses;  // hottest first
              return a.filename < b.filename;
            });
  return records;
}

OverlayStore::LoadedRecord OverlayStore::load_record(
    const std::string& filename) const {
  const std::vector<std::uint8_t> bytes = read_file(directory_ / filename);
  const std::vector<std::uint8_t> payload =
      unwrap_record(bytes.data(), bytes.size(), RecordKind::kStoreEntry);
  ByteReader reader(payload.data(), payload.size());
  LoadedRecord record;
  record.structure_key = reader.str();
  record.structure = std::make_shared<overlay::CompiledStructure>(
      decode_structure(reader));
  if (!reader.done()) {
    throw CorruptRecord("overlay record corrupt: trailing payload bytes");
  }
  // Register the resolution so later add_uses() heat for this key (e.g.
  // from warm-started cache entries) is attributed, not dropped.
  std::lock_guard<std::mutex> lock(mutex_);
  file_of_key_[record.structure_key] = filename;
  touch_locked(filename);
  return record;
}

void OverlayStore::flush_index() {
  std::string text;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    text += common::strprintf("#gen\t%llu\n",
                              static_cast<unsigned long long>(generation_));
    for (const auto& [filename, uses] : uses_) {
      const auto used = last_used_.find(filename);
      text += common::strprintf(
          "%s\t%llu\t%llu\n", filename.c_str(),
          static_cast<unsigned long long>(uses),
          static_cast<unsigned long long>(
              used == last_used_.end() ? 0 : used->second));
    }
  }
  write_file_atomic(directory_ / kIndexFile,
                    std::vector<std::uint8_t>(text.begin(), text.end()));
}

OverlayStore::GcReport OverlayStore::gc(const GcOptions& options) {
  VCGRA_TRACE_SPAN("store.gc");
  std::vector<RecordInfo> records = list();
  GcReport report;
  report.scanned = records.size();

  // Age rule: drop records untouched for more than unused_runs store
  // opens. last_used == 0 (never seen by the index) ages as infinitely
  // old — those are exactly the orphans a budget-less GC should clear.
  std::vector<bool> drop(records.size(), false);
  if (options.unused_runs > 0) {
    for (std::size_t i = 0; i < records.size(); ++i) {
      const std::uint64_t age = records[i].last_used >= generation_
                                    ? 0
                                    : generation_ - records[i].last_used;
      drop[i] = age > options.unused_runs;
    }
  }

  // Budget rule: evict coldest-first (fewest uses, then oldest touch)
  // until the survivors fit max_bytes.
  if (options.max_bytes > 0) {
    std::uint64_t kept_bytes = 0;
    for (std::size_t i = 0; i < records.size(); ++i) {
      if (!drop[i]) kept_bytes += records[i].bytes;
    }
    std::vector<std::size_t> order(records.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&records](std::size_t a, std::size_t b) {
                if (records[a].uses != records[b].uses) {
                  return records[a].uses < records[b].uses;  // coldest first
                }
                if (records[a].last_used != records[b].last_used) {
                  return records[a].last_used < records[b].last_used;
                }
                return records[a].filename < records[b].filename;
              });
    for (const std::size_t i : order) {
      if (kept_bytes <= options.max_bytes) break;
      if (drop[i]) continue;
      drop[i] = true;
      kept_bytes -= records[i].bytes;
    }
  }

  // Probe-chain closure: load() walks probes 0,1,2,... of a hash slot
  // and stops at the first missing file, so dropping probe j strands
  // every deeper probe — collect them too.
  std::map<std::string, int> min_dropped_probe;  // hash prefix -> probe
  const auto split = [](const std::string& name, std::string* prefix) {
    // <16 hex>[-probe].ovl
    const std::string stem = name.substr(0, name.size() - 4);
    const auto dash = stem.find('-');
    *prefix = stem.substr(0, dash);
    if (dash == std::string::npos) return 0;
    return std::atoi(stem.c_str() + dash + 1);
  };
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (!drop[i]) continue;
    std::string prefix;
    const int probe = split(records[i].filename, &prefix);
    const auto it = min_dropped_probe.find(prefix);
    if (it == min_dropped_probe.end() || probe < it->second) {
      min_dropped_probe[prefix] = probe;
    }
  }
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (drop[i]) continue;
    std::string prefix;
    const int probe = split(records[i].filename, &prefix);
    const auto it = min_dropped_probe.find(prefix);
    if (it != min_dropped_probe.end() && probe > it->second) drop[i] = true;
  }

  // Unlink and prune the in-memory maps. rename()-published records make
  // this safe against concurrent services: their open reads keep the
  // inode, and a subsequent miss is just a cold compile + re-save.
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (!drop[i]) {
      report.bytes_kept += records[i].bytes;
      continue;
    }
    std::error_code ec;
    fs::remove(directory_ / records[i].filename, ec);
    if (ec) {  // could not unlink: keep it indexed
      report.bytes_kept += records[i].bytes;
      continue;
    }
    ++report.removed;
    report.bytes_removed += records[i].bytes;
    std::lock_guard<std::mutex> lock(mutex_);
    uses_.erase(records[i].filename);
    last_used_.erase(records[i].filename);
    for (auto it = file_of_key_.begin(); it != file_of_key_.end();) {
      it = it->second == records[i].filename ? file_of_key_.erase(it)
                                             : std::next(it);
    }
  }
  flush_index();
  return report;
}

}  // namespace vcgra::store
