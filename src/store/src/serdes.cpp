#include "vcgra/store/serdes.hpp"

#include <bit>
#include <cstring>

#include "vcgra/common/strings.hpp"

namespace vcgra::store {

namespace {

constexpr std::uint8_t kMagic[4] = {'V', 'C', 'O', 'S'};
constexpr std::size_t kHeaderBytes = 4 + 4 + 4 + 4 + 8 + 8;

// Guard rails for decoded architecture fields: generous for any plausible
// overlay, tight enough that a corrupt-but-checksummed record can never
// drive a pathological allocation or an out-of-range index.
constexpr int kMaxGridDim = 4096;
constexpr int kMaxFpFieldBits = 60;

[[noreturn]] void corrupt(const char* what) {
  throw CorruptRecord(common::strprintf("overlay record corrupt: %s", what));
}

void check(bool ok, const char* what) {
  if (!ok) corrupt(what);
}

}  // namespace

VersionMismatch::VersionMismatch(std::uint32_t found, std::uint32_t expected)
    : StoreError(common::strprintf(
          "overlay record format version %u, this build reads %u", found,
          expected)),
      found_(found),
      expected_(expected) {}

std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t size) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= data[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::uint64_t fnv1a64(const std::string& text) {
  return fnv1a64(reinterpret_cast<const std::uint8_t*>(text.data()),
                 text.size());
}

void ByteWriter::u8(std::uint8_t v) { buffer_.push_back(v); }

void ByteWriter::u32(std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    buffer_.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void ByteWriter::u64(std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    buffer_.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void ByteWriter::i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }

void ByteWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void ByteWriter::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  buffer_.insert(buffer_.end(), s.begin(), s.end());
}

std::uint8_t ByteReader::u8() {
  if (remaining() < 1) throw TruncatedRecord("overlay record truncated (u8)");
  return data_[offset_++];
}

std::uint32_t ByteReader::u32() {
  if (remaining() < 4) throw TruncatedRecord("overlay record truncated (u32)");
  std::uint32_t v = 0;
  for (int shift = 0; shift < 32; shift += 8) {
    v |= static_cast<std::uint32_t>(data_[offset_++]) << shift;
  }
  return v;
}

std::uint64_t ByteReader::u64() {
  if (remaining() < 8) throw TruncatedRecord("overlay record truncated (u64)");
  std::uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 8) {
    v |= static_cast<std::uint64_t>(data_[offset_++]) << shift;
  }
  return v;
}

std::int32_t ByteReader::i32() { return static_cast<std::int32_t>(u32()); }

double ByteReader::f64() { return std::bit_cast<double>(u64()); }

std::string ByteReader::str() {
  const std::uint32_t size = u32();
  if (remaining() < size) {
    throw TruncatedRecord("overlay record truncated (string)");
  }
  std::string s(reinterpret_cast<const char*>(data_ + offset_), size);
  offset_ += size;
  return s;
}

std::size_t ByteReader::count(std::size_t min_element_bytes) {
  const std::uint32_t n = u32();
  if (min_element_bytes > 0 &&
      static_cast<std::size_t>(n) > remaining() / min_element_bytes) {
    throw TruncatedRecord("overlay record truncated (count exceeds payload)");
  }
  return n;
}

std::vector<std::uint8_t> wrap_record(RecordKind kind,
                                      std::vector<std::uint8_t> payload) {
  ByteWriter header;
  header.u8(kMagic[0]);
  header.u8(kMagic[1]);
  header.u8(kMagic[2]);
  header.u8(kMagic[3]);
  header.u32(kFormatVersion);
  header.u32(static_cast<std::uint32_t>(kind));
  header.u32(0);  // reserved
  header.u64(payload.size());
  header.u64(fnv1a64(payload.data(), payload.size()));
  std::vector<std::uint8_t> record = header.take();
  record.insert(record.end(), payload.begin(), payload.end());
  return record;
}

std::vector<std::uint8_t> unwrap_record(const std::uint8_t* data,
                                        std::size_t size, RecordKind expected) {
  if (size < kHeaderBytes) {
    throw TruncatedRecord("overlay record truncated (header)");
  }
  if (std::memcmp(data, kMagic, sizeof(kMagic)) != 0) {
    corrupt("bad magic");
  }
  ByteReader header(data + 4, kHeaderBytes - 4);
  const std::uint32_t version = header.u32();
  if (version != kFormatVersion) {
    throw VersionMismatch(version, kFormatVersion);
  }
  const std::uint32_t kind = header.u32();
  check(header.u32() == 0, "reserved header field not zero");
  const std::uint64_t payload_size = header.u64();
  const std::uint64_t checksum = header.u64();
  if (kind != static_cast<std::uint32_t>(expected)) {
    corrupt("unexpected record kind");
  }
  if (payload_size > size - kHeaderBytes) {
    throw TruncatedRecord("overlay record truncated (payload)");
  }
  check(payload_size == size - kHeaderBytes, "trailing bytes after payload");
  if (fnv1a64(data + kHeaderBytes, payload_size) != checksum) {
    corrupt("payload checksum mismatch");
  }
  return std::vector<std::uint8_t>(data + kHeaderBytes, data + size);
}

namespace {

void encode_arch(ByteWriter& w, const overlay::OverlayArch& arch) {
  w.i32(arch.rows);
  w.i32(arch.cols);
  w.i32(arch.tracks);
  w.i32(arch.settings_bits);
  w.i32(arch.counter_bits);
  w.i32(arch.format.we);
  w.i32(arch.format.wf);
  w.u8(static_cast<std::uint8_t>((arch.pe.mul << 0) | (arch.pe.add << 1) |
                                 (arch.pe.sub << 2) | (arch.pe.mac << 3) |
                                 (arch.pe.pass << 4)));
}

overlay::OverlayArch decode_arch(ByteReader& r) {
  overlay::OverlayArch arch;
  arch.rows = r.i32();
  arch.cols = r.i32();
  arch.tracks = r.i32();
  arch.settings_bits = r.i32();
  arch.counter_bits = r.i32();
  arch.format.we = r.i32();
  arch.format.wf = r.i32();
  const std::uint8_t pe = r.u8();
  arch.pe.mul = pe & 1;
  arch.pe.add = pe & 2;
  arch.pe.sub = pe & 4;
  arch.pe.mac = pe & 8;
  arch.pe.pass = pe & 16;
  check(arch.rows > 0 && arch.rows <= kMaxGridDim, "arch rows out of range");
  check(arch.cols > 0 && arch.cols <= kMaxGridDim, "arch cols out of range");
  check(arch.tracks > 0 && arch.tracks <= kMaxGridDim, "arch tracks out of range");
  check(arch.format.we > 0 && arch.format.we <= kMaxFpFieldBits,
        "fp exponent width out of range");
  check(arch.format.wf > 0 && arch.format.wf <= kMaxFpFieldBits,
        "fp fraction width out of range");
  return arch;
}

void encode_settings(ByteWriter& w, const overlay::VcgraSettings& settings) {
  w.u32(static_cast<std::uint32_t>(settings.pes.size()));
  for (const overlay::PeSettings& pe : settings.pes) {
    w.u8(pe.used ? 1 : 0);
    w.u8(static_cast<std::uint8_t>(pe.op));
    w.u64(pe.coeff_bits);
    w.u32(pe.count);
    w.i32(pe.dfg_node);
  }
  w.u32(static_cast<std::uint32_t>(settings.routes.size()));
  for (const overlay::RoutedNet& net : settings.routes) {
    w.i32(net.from_node);
    w.i32(net.to_node);
    w.i32(net.to_operand);
    w.u32(static_cast<std::uint32_t>(net.hops.size()));
    for (const auto& [r_, c_] : net.hops) {
      w.i32(r_);
      w.i32(c_);
    }
  }
}

overlay::VcgraSettings decode_settings(ByteReader& r,
                                       const overlay::OverlayArch& arch) {
  overlay::VcgraSettings settings;
  const std::size_t num_pes = r.count(18);
  check(num_pes == static_cast<std::size_t>(arch.num_pes()),
        "PE settings count does not match arch");
  settings.pes.reserve(num_pes);
  for (std::size_t i = 0; i < num_pes; ++i) {
    overlay::PeSettings pe;
    pe.used = r.u8() != 0;
    const std::uint8_t op = r.u8();
    check(op <= static_cast<std::uint8_t>(overlay::OpKind::kOutput),
          "PE opcode out of range");
    pe.op = static_cast<overlay::OpKind>(op);
    pe.coeff_bits = r.u64();
    pe.count = r.u32();
    pe.dfg_node = r.i32();
    settings.pes.push_back(pe);
  }
  const std::size_t num_routes = r.count(16);
  settings.routes.reserve(num_routes);
  for (std::size_t i = 0; i < num_routes; ++i) {
    overlay::RoutedNet net;
    net.from_node = r.i32();
    net.to_node = r.i32();
    net.to_operand = r.i32();
    const std::size_t num_hops = r.count(8);
    net.hops.reserve(num_hops);
    for (std::size_t h = 0; h < num_hops; ++h) {
      const int row = r.i32();
      const int col = r.i32();
      check(row >= 0 && row < arch.rows && col >= 0 && col < arch.cols,
            "route hop outside the grid");
      net.hops.emplace_back(row, col);
    }
    settings.routes.push_back(std::move(net));
  }
  return settings;
}

void encode_report(ByteWriter& w, const overlay::CompileReport& report) {
  w.f64(report.synth_seconds);
  w.f64(report.map_seconds);
  w.f64(report.place_seconds);
  w.f64(report.route_seconds);
  w.i32(report.pes_used);
  w.i32(report.total_hops);
}

overlay::CompileReport decode_report(ByteReader& r) {
  overlay::CompileReport report;
  report.synth_seconds = r.f64();
  report.map_seconds = r.f64();
  report.place_seconds = r.f64();
  report.route_seconds = r.f64();
  report.pes_used = r.i32();
  report.total_hops = r.i32();
  return report;
}

void encode_node_vector(ByteWriter& w, const std::vector<int>& nodes) {
  w.u32(static_cast<std::uint32_t>(nodes.size()));
  for (const int node : nodes) w.i32(node);
}

std::vector<int> decode_node_vector(ByteReader& r) {
  const std::size_t size = r.count(4);
  std::vector<int> nodes;
  nodes.reserve(size);
  for (std::size_t i = 0; i < size; ++i) nodes.push_back(r.i32());
  return nodes;
}

void encode_name_map(ByteWriter& w, const std::map<std::string, int>& map) {
  w.u32(static_cast<std::uint32_t>(map.size()));
  for (const auto& [name, node] : map) {
    w.str(name);
    w.i32(node);
  }
}

std::map<std::string, int> decode_name_map(ByteReader& r) {
  const std::size_t size = r.count(8);
  std::map<std::string, int> map;
  for (std::size_t i = 0; i < size; ++i) {
    std::string name = r.str();
    map[std::move(name)] = r.i32();
  }
  return map;
}

void encode_binding(ByteWriter& w, const overlay::ParamBinding& binding) {
  w.u32(static_cast<std::uint32_t>(binding.size()));
  for (const auto& [name, value] : binding) {
    w.str(name);
    w.f64(value);
  }
}

overlay::ParamBinding decode_binding(ByteReader& r) {
  const std::size_t size = r.count(12);
  overlay::ParamBinding binding;
  for (std::size_t i = 0; i < size; ++i) {
    std::string name = r.str();
    binding[std::move(name)] = r.f64();
  }
  return binding;
}

void encode_output_source(ByteWriter& w, const std::map<int, int>& map) {
  w.u32(static_cast<std::uint32_t>(map.size()));
  for (const auto& [out, src] : map) {
    w.i32(out);
    w.i32(src);
  }
}

std::map<int, int> decode_output_source(ByteReader& r) {
  const std::size_t size = r.count(8);
  std::map<int, int> map;
  for (std::size_t i = 0; i < size; ++i) {
    const int out = r.i32();
    map[out] = r.i32();
  }
  return map;
}

}  // namespace

void encode(ByteWriter& w, const overlay::CompiledStructure& structure) {
  encode_arch(w, structure.arch);
  encode_settings(w, structure.settings);
  encode_node_vector(w, structure.pe_of_node);
  encode_report(w, structure.report);
  w.u32(static_cast<std::uint32_t>(structure.param_slots.size()));
  for (const overlay::ParamSlot& slot : structure.param_slots) {
    w.str(slot.name);
    w.i32(slot.pe);
    w.i32(slot.dfg_node);
  }
  encode_binding(w, structure.defaults);
  encode_name_map(w, structure.input_node_by_name);
  encode_name_map(w, structure.output_node_by_name);
  encode_output_source(w, structure.output_source);
}

overlay::CompiledStructure decode_structure(ByteReader& r) {
  overlay::CompiledStructure structure;
  structure.arch = decode_arch(r);
  structure.settings = decode_settings(r, structure.arch);
  structure.pe_of_node = decode_node_vector(r);
  structure.report = decode_report(r);
  const std::size_t num_slots = r.count(12);
  structure.param_slots.reserve(num_slots);
  for (std::size_t i = 0; i < num_slots; ++i) {
    overlay::ParamSlot slot;
    slot.name = r.str();
    slot.pe = r.i32();
    slot.dfg_node = r.i32();
    check(slot.pe >= 0 &&
              slot.pe < static_cast<int>(structure.settings.pes.size()),
          "param slot PE index out of range");
    structure.param_slots.push_back(std::move(slot));
  }
  structure.defaults = decode_binding(r);
  // specialize() evaluates binding.at(slot.name): every slot must have a
  // default or a checksum-valid-but-inconsistent record could throw an
  // untyped error deep inside the compiler.
  for (const overlay::ParamSlot& slot : structure.param_slots) {
    check(structure.defaults.count(slot.name) == 1,
          "param slot without a default value");
  }
  structure.input_node_by_name = decode_name_map(r);
  structure.output_node_by_name = decode_name_map(r);
  structure.output_source = decode_output_source(r);
  for (const auto& [name, node] : structure.output_node_by_name) {
    check(structure.output_source.count(node) == 1,
          "output node without a source");
  }
  return structure;
}

void encode(ByteWriter& w, const overlay::Compiled& compiled) {
  encode_arch(w, compiled.arch);
  encode_settings(w, compiled.settings);
  encode_node_vector(w, compiled.pe_of_node);
  encode_report(w, compiled.report);
  encode_name_map(w, compiled.input_node_by_name);
  encode_name_map(w, compiled.output_node_by_name);
  encode_output_source(w, compiled.output_source);
}

overlay::Compiled decode_compiled(ByteReader& r) {
  overlay::Compiled compiled;
  compiled.arch = decode_arch(r);
  compiled.settings = decode_settings(r, compiled.arch);
  compiled.pe_of_node = decode_node_vector(r);
  compiled.report = decode_report(r);
  compiled.input_node_by_name = decode_name_map(r);
  compiled.output_node_by_name = decode_name_map(r);
  compiled.output_source = decode_output_source(r);
  for (const auto& [name, node] : compiled.output_node_by_name) {
    check(compiled.output_source.count(node) == 1,
          "output node without a source");
  }
  return compiled;
}

std::vector<std::uint8_t> serialize(const overlay::CompiledStructure& structure) {
  ByteWriter w;
  encode(w, structure);
  return wrap_record(RecordKind::kStructure, w.take());
}

std::vector<std::uint8_t> serialize(const overlay::Compiled& compiled) {
  ByteWriter w;
  encode(w, compiled);
  return wrap_record(RecordKind::kCompiled, w.take());
}

overlay::CompiledStructure deserialize_structure(
    const std::vector<std::uint8_t>& bytes) {
  const std::vector<std::uint8_t> payload =
      unwrap_record(bytes.data(), bytes.size(), RecordKind::kStructure);
  ByteReader r(payload.data(), payload.size());
  overlay::CompiledStructure structure = decode_structure(r);
  check(r.done(), "payload longer than the structure");
  return structure;
}

overlay::Compiled deserialize_compiled(const std::vector<std::uint8_t>& bytes) {
  const std::vector<std::uint8_t> payload =
      unwrap_record(bytes.data(), bytes.size(), RecordKind::kCompiled);
  ByteReader r(payload.data(), payload.size());
  overlay::Compiled compiled = decode_compiled(r);
  check(r.done(), "payload longer than the artifact");
  return compiled;
}

}  // namespace vcgra::store
