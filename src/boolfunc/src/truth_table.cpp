#include "vcgra/boolfunc/truth_table.hpp"

#include <bit>
#include <stdexcept>

namespace vcgra::boolfunc {
namespace {

// Precomputed within-word projection patterns for variables 0..5.
constexpr std::uint64_t kVarMask[6] = {
    0xaaaaaaaaaaaaaaaaULL, 0xccccccccccccccccULL, 0xf0f0f0f0f0f0f0f0ULL,
    0xff00ff00ff00ff00ULL, 0xffff0000ffff0000ULL, 0xffffffff00000000ULL,
};

}  // namespace

std::size_t TruthTable::word_count(int num_vars) {
  if (num_vars <= 6) return 1;
  return std::size_t{1} << (num_vars - 6);
}

TruthTable::TruthTable(int num_vars) : num_vars_(num_vars) {
  if (num_vars < 0 || num_vars > kMaxVars) {
    throw std::invalid_argument("TruthTable: bad variable count");
  }
  words_.assign(word_count(num_vars), 0);
}

TruthTable TruthTable::zero(int num_vars) { return TruthTable(num_vars); }

TruthTable TruthTable::one(int num_vars) {
  TruthTable tt(num_vars);
  for (auto& w : tt.words_) w = ~std::uint64_t{0};
  tt.mask_top_word();
  return tt;
}

TruthTable TruthTable::var(int num_vars, int index) {
  if (index < 0 || index >= num_vars) {
    throw std::invalid_argument("TruthTable::var: index out of range");
  }
  TruthTable tt(num_vars);
  if (index < 6) {
    for (auto& w : tt.words_) w = kVarMask[index];
  } else {
    // Whole words alternate in blocks of 2^(index-6).
    const std::size_t block = std::size_t{1} << (index - 6);
    for (std::size_t w = 0; w < tt.words_.size(); ++w) {
      if ((w / block) & 1) tt.words_[w] = ~std::uint64_t{0};
    }
  }
  tt.mask_top_word();
  return tt;
}

TruthTable TruthTable::from_bits(int num_vars, const std::vector<bool>& bits) {
  TruthTable tt(num_vars);
  if (bits.size() != tt.num_minterms()) {
    throw std::invalid_argument("TruthTable::from_bits: size mismatch");
  }
  for (std::uint64_t m = 0; m < bits.size(); ++m) tt.set(m, bits[m]);
  return tt;
}

TruthTable TruthTable::from_binary_string(int num_vars, const std::string& bits) {
  TruthTable tt(num_vars);
  if (bits.size() != tt.num_minterms()) {
    throw std::invalid_argument("TruthTable::from_binary_string: size mismatch");
  }
  for (std::uint64_t m = 0; m < bits.size(); ++m) {
    const char c = bits[bits.size() - 1 - m];
    if (c != '0' && c != '1') {
      throw std::invalid_argument("TruthTable::from_binary_string: non-binary digit");
    }
    tt.set(m, c == '1');
  }
  return tt;
}

bool TruthTable::get(std::uint64_t minterm) const {
  return (words_[minterm >> 6] >> (minterm & 63)) & 1;
}

void TruthTable::set(std::uint64_t minterm, bool value) {
  const std::uint64_t bit = std::uint64_t{1} << (minterm & 63);
  if (value) {
    words_[minterm >> 6] |= bit;
  } else {
    words_[minterm >> 6] &= ~bit;
  }
}

TruthTable TruthTable::operator~() const {
  TruthTable out(*this);
  for (auto& w : out.words_) w = ~w;
  out.mask_top_word();
  return out;
}

TruthTable TruthTable::operator&(const TruthTable& other) const {
  if (num_vars_ != other.num_vars_) throw std::invalid_argument("TT arity mismatch");
  TruthTable out(*this);
  for (std::size_t i = 0; i < words_.size(); ++i) out.words_[i] &= other.words_[i];
  return out;
}

TruthTable TruthTable::operator|(const TruthTable& other) const {
  if (num_vars_ != other.num_vars_) throw std::invalid_argument("TT arity mismatch");
  TruthTable out(*this);
  for (std::size_t i = 0; i < words_.size(); ++i) out.words_[i] |= other.words_[i];
  return out;
}

TruthTable TruthTable::operator^(const TruthTable& other) const {
  if (num_vars_ != other.num_vars_) throw std::invalid_argument("TT arity mismatch");
  TruthTable out(*this);
  for (std::size_t i = 0; i < words_.size(); ++i) out.words_[i] ^= other.words_[i];
  return out;
}

bool TruthTable::operator==(const TruthTable& other) const {
  return num_vars_ == other.num_vars_ && words_ == other.words_;
}

TruthTable TruthTable::cofactor(int index, bool value) const {
  TruthTable out(*this);
  if (index < 6) {
    const std::uint64_t mask = kVarMask[index];
    const int shift = 1 << index;
    for (auto& w : out.words_) {
      if (value) {
        const std::uint64_t hi = w & mask;
        w = hi | (hi >> shift);
      } else {
        const std::uint64_t lo = w & ~mask;
        w = lo | (lo << shift);
      }
    }
  } else {
    const std::size_t block = std::size_t{1} << (index - 6);
    for (std::size_t w = 0; w < out.words_.size(); ++w) {
      const bool in_hi = (w / block) & 1;
      const std::size_t partner = in_hi ? w - block : w + block;
      // Copy the selected half over both halves.
      if (value) {
        out.words_[w] = words_[in_hi ? w : partner];
      } else {
        out.words_[w] = words_[in_hi ? partner : w];
      }
    }
  }
  return out;
}

bool TruthTable::depends_on(int index) const {
  return cofactor(index, false) != cofactor(index, true);
}

std::uint32_t TruthTable::support() const {
  std::uint32_t mask = 0;
  for (int i = 0; i < num_vars_; ++i) {
    if (depends_on(i)) mask |= (1u << i);
  }
  return mask;
}

bool TruthTable::is_const(bool value) const {
  const std::uint64_t expect = value ? ~std::uint64_t{0} : 0;
  if (num_vars_ <= 6) {
    const std::uint64_t mask =
        num_vars_ == 6 ? ~std::uint64_t{0}
                       : ((std::uint64_t{1} << (std::uint64_t{1} << num_vars_)) - 1);
    return (words_[0] & mask) == (expect & mask);
  }
  for (const auto& w : words_) {
    if (w != expect) return false;
  }
  return true;
}

bool TruthTable::is_wire(int* index, bool* inverted) const {
  for (int i = 0; i < num_vars_; ++i) {
    const TruthTable proj = var(num_vars_, i);
    if (*this == proj) {
      if (index) *index = i;
      if (inverted) *inverted = false;
      return true;
    }
    if (*this == ~proj) {
      if (index) *index = i;
      if (inverted) *inverted = true;
      return true;
    }
  }
  return false;
}

TruthTable TruthTable::permute(int new_num_vars, const std::vector<int>& old_of_new) const {
  if (static_cast<int>(old_of_new.size()) != new_num_vars) {
    throw std::invalid_argument("TruthTable::permute: map size mismatch");
  }
  TruthTable out(new_num_vars);
  for (std::uint64_t m = 0; m < out.num_minterms(); ++m) {
    std::uint64_t old_m = 0;
    for (int j = 0; j < new_num_vars; ++j) {
      if ((m >> j) & 1) {
        const int oi = old_of_new[j];
        if (oi >= 0) old_m |= (std::uint64_t{1} << oi);
      }
    }
    out.set(m, get(old_m));
  }
  return out;
}

std::uint64_t TruthTable::count_ones() const {
  std::uint64_t total = 0;
  if (num_vars_ <= 6) {
    const std::uint64_t mask =
        num_vars_ == 6 ? ~std::uint64_t{0}
                       : ((std::uint64_t{1} << (std::uint64_t{1} << num_vars_)) - 1);
    return static_cast<std::uint64_t>(std::popcount(words_[0] & mask));
  }
  for (const auto& w : words_) total += static_cast<std::uint64_t>(std::popcount(w));
  return total;
}

std::string TruthTable::to_binary_string() const {
  std::string out;
  out.reserve(num_minterms());
  for (std::uint64_t m = num_minterms(); m-- > 0;) {
    out += get(m) ? '1' : '0';
  }
  return out;
}

std::uint64_t TruthTable::hash() const {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL ^ static_cast<std::uint64_t>(num_vars_);
  for (const auto& w : words_) {
    h ^= w + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

void TruthTable::mask_top_word() {
  if (num_vars_ < 6) {
    words_[0] &= (std::uint64_t{1} << (std::uint64_t{1} << num_vars_)) - 1;
  }
}

}  // namespace vcgra::boolfunc
