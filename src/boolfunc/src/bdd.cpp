#include "vcgra/boolfunc/bdd.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace vcgra::boolfunc {

BddManager::BddManager() {
  // nodes_[0] = terminal 0, nodes_[1] = terminal 1.
  nodes_.push_back(Node{kTerminalVar, 0, 0});
  nodes_.push_back(Node{kTerminalVar, 1, 1});
}

BddRef BddManager::var(int var_index) {
  if (var_index < 0) throw std::invalid_argument("BddManager::var: negative index");
  num_vars_ = std::max(num_vars_, var_index + 1);
  return make_node(var_index, zero(), one());
}

BddRef BddManager::nvar(int var_index) {
  if (var_index < 0) throw std::invalid_argument("BddManager::nvar: negative index");
  num_vars_ = std::max(num_vars_, var_index + 1);
  return make_node(var_index, one(), zero());
}

BddRef BddManager::make_node(int var, BddRef lo, BddRef hi) {
  if (lo == hi) return lo;
  const NodeKey key{var, lo, hi};
  const auto it = unique_.find(key);
  if (it != unique_.end()) return it->second;
  const BddRef ref = static_cast<BddRef>(nodes_.size());
  nodes_.push_back(Node{var, lo, hi});
  unique_.emplace(key, ref);
  return ref;
}

int BddManager::top_var(BddRef f, BddRef g, BddRef h) const {
  int v = kTerminalVar;
  if (!is_terminal(f)) v = std::min(v, nodes_[f].var);
  if (!is_terminal(g)) v = std::min(v, nodes_[g].var);
  if (!is_terminal(h)) v = std::min(v, nodes_[h].var);
  return v;
}

BddRef BddManager::ite(BddRef f, BddRef g, BddRef h) {
  // Terminal cases.
  if (f == one()) return g;
  if (f == zero()) return h;
  if (g == h) return g;
  if (g == one() && h == zero()) return f;

  const IteKey key{f, g, h};
  const auto it = ite_cache_.find(key);
  if (it != ite_cache_.end()) return it->second;

  const int v = top_var(f, g, h);
  const auto cofactor = [&](BddRef x, bool value) -> BddRef {
    if (is_terminal(x) || nodes_[x].var != v) return x;
    return value ? nodes_[x].hi : nodes_[x].lo;
  };

  const BddRef hi = ite(cofactor(f, true), cofactor(g, true), cofactor(h, true));
  const BddRef lo = ite(cofactor(f, false), cofactor(g, false), cofactor(h, false));
  const BddRef result = make_node(v, lo, hi);
  ite_cache_.emplace(key, result);
  return result;
}

BddRef BddManager::restrict_var(BddRef f, int var_index, bool value) {
  if (is_terminal(f)) return f;
  const Node& node = nodes_[f];
  if (node.var > var_index) return f;
  if (node.var == var_index) {
    return restrict_var(value ? node.hi : node.lo, var_index, value);
  }
  const BddRef lo = restrict_var(node.lo, var_index, value);
  const BddRef hi = restrict_var(node.hi, var_index, value);
  return make_node(node.var, lo, hi);
}

bool BddManager::eval(BddRef f, std::uint64_t assignment) const {
  while (!is_terminal(f)) {
    const Node& node = nodes_[f];
    f = ((assignment >> node.var) & 1) ? node.hi : node.lo;
  }
  return f == one();
}

bool BddManager::eval(BddRef f, const std::vector<bool>& assignment) const {
  while (!is_terminal(f)) {
    const Node& node = nodes_[f];
    const bool bit = node.var < static_cast<int>(assignment.size()) &&
                     assignment[static_cast<std::size_t>(node.var)];
    f = bit ? node.hi : node.lo;
  }
  return f == one();
}

std::vector<int> BddManager::support(BddRef f) const {
  std::unordered_set<BddRef> visited;
  std::unordered_set<int> vars;
  std::vector<BddRef> stack{f};
  while (!stack.empty()) {
    const BddRef cur = stack.back();
    stack.pop_back();
    if (is_terminal(cur) || !visited.insert(cur).second) continue;
    vars.insert(nodes_[cur].var);
    stack.push_back(nodes_[cur].lo);
    stack.push_back(nodes_[cur].hi);
  }
  std::vector<int> out(vars.begin(), vars.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t BddManager::node_count(BddRef f) const {
  std::unordered_set<BddRef> visited;
  std::vector<BddRef> stack{f};
  std::size_t count = 0;
  while (!stack.empty()) {
    const BddRef cur = stack.back();
    stack.pop_back();
    if (is_terminal(cur) || !visited.insert(cur).second) continue;
    ++count;
    stack.push_back(nodes_[cur].lo);
    stack.push_back(nodes_[cur].hi);
  }
  return count;
}

BddRef BddManager::from_truth_table(const TruthTable& tt,
                                    const std::vector<int>& var_of_tt_var) {
  if (static_cast<int>(var_of_tt_var.size()) != tt.num_vars()) {
    throw std::invalid_argument("BddManager::from_truth_table: var map mismatch");
  }
  // Shannon-expand over truth-table variables, highest index first so the
  // recursion bottoms out at constants.
  struct Builder {
    BddManager& mgr;
    const std::vector<int>& vmap;
    BddRef build(const TruthTable& f, int next) {
      if (f.is_const(false)) return mgr.zero();
      if (f.is_const(true)) return mgr.one();
      // Find the highest remaining variable in the support.
      int pick = -1;
      for (int i = next; i >= 0; --i) {
        if (f.depends_on(i)) {
          pick = i;
          break;
        }
      }
      if (pick < 0) return f.get(0) ? mgr.one() : mgr.zero();
      const BddRef lo = build(f.cofactor(pick, false), pick - 1);
      const BddRef hi = build(f.cofactor(pick, true), pick - 1);
      const BddRef v = mgr.var(vmap[static_cast<std::size_t>(pick)]);
      return mgr.ite(v, hi, lo);
    }
  };
  Builder builder{*this, var_of_tt_var};
  return builder.build(tt, tt.num_vars() - 1);
}

}  // namespace vcgra::boolfunc
