// Reduced Ordered Binary Decision Diagrams.
//
// The Partial Parameterized Configuration (PPC) produced by the generic
// stage of the DCS tool flow stores, for every tunable configuration bit,
// a Boolean function of the design's *parameter* inputs.  The Specialized
// Configuration Generator (SCG) evaluates those functions each time the
// parameters change.  BDDs keep the functions canonical (so identical bit
// functions share storage) and make evaluation O(number of variables).
//
// This is a plain ROBDD manager (no complement edges): terminals 0/1,
// unique table for node hash-consing, memoized ITE.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "vcgra/boolfunc/truth_table.hpp"

namespace vcgra::boolfunc {

/// Handle to a BDD node owned by a BddManager. 0 and 1 are the terminals.
using BddRef = std::uint32_t;

class BddManager {
 public:
  BddManager();

  BddRef zero() const { return 0; }
  BddRef one() const { return 1; }

  /// Projection function of variable `var` (creates the variable on demand).
  BddRef var(int var_index);
  /// Negative literal !x_var.
  BddRef nvar(int var_index);

  BddRef ite(BddRef f, BddRef g, BddRef h);
  BddRef bdd_and(BddRef a, BddRef b) { return ite(a, b, zero()); }
  BddRef bdd_or(BddRef a, BddRef b) { return ite(a, one(), b); }
  BddRef bdd_xor(BddRef a, BddRef b) { return ite(a, bdd_not(b), b); }
  BddRef bdd_not(BddRef a) { return ite(a, zero(), one()); }

  /// Shannon cofactor f|_{var=value}.
  BddRef restrict_var(BddRef f, int var_index, bool value);

  /// Evaluate under a dense assignment; bit i of `assignment` is var i.
  /// Variables beyond 64 must use the vector overload.
  bool eval(BddRef f, std::uint64_t assignment) const;
  bool eval(BddRef f, const std::vector<bool>& assignment) const;

  /// Variables in the support of f, ascending.
  std::vector<int> support(BddRef f) const;

  /// Number of decision nodes reachable from f (excludes terminals).
  std::size_t node_count(BddRef f) const;

  /// Build a BDD from a truth table; table variable i maps to manager
  /// variable `var_of_tt_var[i]`.
  BddRef from_truth_table(const TruthTable& tt, const std::vector<int>& var_of_tt_var);

  /// Total live nodes in the manager (diagnostics / memory accounting).
  std::size_t total_nodes() const { return nodes_.size(); }

  int num_vars() const { return num_vars_; }

 private:
  struct Node {
    int var;     // decision variable; terminals use a sentinel
    BddRef lo;   // cofactor var=0
    BddRef hi;   // cofactor var=1
  };

  struct NodeKey {
    int var;
    BddRef lo;
    BddRef hi;
    bool operator==(const NodeKey&) const = default;
  };
  struct NodeKeyHash {
    std::size_t operator()(const NodeKey& k) const {
      std::uint64_t h = static_cast<std::uint64_t>(k.var) * 0x9e3779b97f4a7c15ULL;
      h ^= (static_cast<std::uint64_t>(k.lo) << 32) | k.hi;
      h *= 0xbf58476d1ce4e5b9ULL;
      return static_cast<std::size_t>(h ^ (h >> 29));
    }
  };
  struct IteKey {
    BddRef f, g, h;
    bool operator==(const IteKey&) const = default;
  };
  struct IteKeyHash {
    std::size_t operator()(const IteKey& k) const {
      std::uint64_t h = k.f;
      h = h * 0x9e3779b97f4a7c15ULL + k.g;
      h = h * 0x9e3779b97f4a7c15ULL + k.h;
      return static_cast<std::size_t>(h ^ (h >> 31));
    }
  };

  static constexpr int kTerminalVar = 1 << 30;

  BddRef make_node(int var, BddRef lo, BddRef hi);
  int top_var(BddRef f, BddRef g, BddRef h) const;
  bool is_terminal(BddRef f) const { return f <= 1; }

  std::vector<Node> nodes_;
  std::unordered_map<NodeKey, BddRef, NodeKeyHash> unique_;
  std::unordered_map<IteKey, BddRef, IteKeyHash> ite_cache_;
  int num_vars_ = 0;
};

}  // namespace vcgra::boolfunc
