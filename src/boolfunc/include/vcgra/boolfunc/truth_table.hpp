// Dense truth tables over up to 16 variables.
//
// Truth tables are the working representation in the technology mapper
// (cut functions, LUT configurations). A K-LUT's configuration is a truth
// table over its K physical inputs; a *Tunable* LUT additionally carries
// parameter variables, so cut functions can have K "real" variables plus a
// handful of parameter variables — hence the 16-variable ceiling rather
// than the 6 of a single physical LUT.
//
// Variable i corresponds to bit i of a minterm index: minterm m has
// variable i set iff (m >> i) & 1.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace vcgra::boolfunc {

class TruthTable {
 public:
  static constexpr int kMaxVars = 16;

  /// All-zero function of `num_vars` variables.
  explicit TruthTable(int num_vars = 0);

  static TruthTable zero(int num_vars);
  static TruthTable one(int num_vars);
  /// Projection x_index over `num_vars` variables.
  static TruthTable var(int num_vars, int index);
  /// Build from explicit minterm bits: bits[m] is f(m). bits.size()==2^num_vars.
  static TruthTable from_bits(int num_vars, const std::vector<bool>& bits);
  /// Parse a binary string, MSB = highest minterm (e.g. "1000" = AND2).
  static TruthTable from_binary_string(int num_vars, const std::string& bits);

  int num_vars() const { return num_vars_; }
  std::uint64_t num_minterms() const { return std::uint64_t{1} << num_vars_; }

  bool get(std::uint64_t minterm) const;
  void set(std::uint64_t minterm, bool value);

  /// Evaluate under assignment: bit i of `assignment` is the value of var i.
  bool eval(std::uint64_t assignment) const { return get(assignment); }

  TruthTable operator~() const;
  TruthTable operator&(const TruthTable& other) const;
  TruthTable operator|(const TruthTable& other) const;
  TruthTable operator^(const TruthTable& other) const;
  bool operator==(const TruthTable& other) const;
  bool operator!=(const TruthTable& other) const { return !(*this == other); }

  /// Shannon cofactor: substitute var `index` = `value`; arity is preserved
  /// (the variable becomes vacuous).
  TruthTable cofactor(int index, bool value) const;

  /// True if the function's value changes with var `index`.
  bool depends_on(int index) const;

  /// Bitmask of variables the function actually depends on.
  std::uint32_t support() const;

  bool is_const(bool value) const;

  /// If the function equals x_i (inverted==false) or !x_i (inverted==true)
  /// for exactly one input i, report it. This is the TCON detection test:
  /// a LUT that is a (possibly inverted) wire can be moved into routing.
  bool is_wire(int* index, bool* inverted) const;

  /// Remap onto a fresh variable set: new var j <- old var old_of_new[j].
  /// Used when composing cut functions whose leaves were merged/reordered.
  TruthTable permute(int new_num_vars, const std::vector<int>& old_of_new) const;

  std::uint64_t count_ones() const;

  /// Binary string, minterm (2^n - 1) first. Useful in test failures.
  std::string to_binary_string() const;

  /// 64-bit hash for structural hashing of LUT configs.
  std::uint64_t hash() const;

  const std::vector<std::uint64_t>& words() const { return words_; }

 private:
  void mask_top_word();
  static std::size_t word_count(int num_vars);

  int num_vars_;
  std::vector<std::uint64_t> words_;
};

}  // namespace vcgra::boolfunc
