// Minimal recursive-descent JSON reader for the telemetry tooling.
//
// Just enough of RFC 8259 to load the exporter's own output — the
// vcgra_stats CLI parses stats snapshots to pretty-print/diff them, and
// the trace checker (CI smoke job, test_telemetry) validates that the
// Chrome trace_event file is well-formed. Not a general-purpose parser:
// numbers become double, \uXXXX escapes decode the BMP only.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace vcgra::telemetry {

struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> array;
  // Insertion-ordered object members (duplicate keys keep the last).
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_null() const { return kind == Kind::Null; }
  bool is_object() const { return kind == Kind::Object; }
  bool is_array() const { return kind == Kind::Array; }
  bool is_number() const { return kind == Kind::Number; }
  bool is_string() const { return kind == Kind::String; }

  /// Object member by key; nullptr when absent or not an object.
  const JsonValue* find(const std::string& key) const;
};

/// Parses `text` as one JSON document. Returns false (with a
/// human-readable message and byte offset in `error`) on malformed
/// input, including trailing garbage after the document.
bool parse_json(const std::string& text, JsonValue* out, std::string* error);

}  // namespace vcgra::telemetry
