// Fixed-capacity time-series over registry snapshots.
//
// The metrics registry is exact but point-in-time; trends (throughput
// dropping, p99 creeping up, the queue backing up) only exist as the
// difference between snapshots. TimeSeriesStore turns a stream of
// sampling windows into derived scalar series, each kept in a ring of
// the last `capacity` windows:
//
//   * counter C          -> "C.rate"            (delta / interval, 1/s)
//   * gauge G            -> "G"                 (sampled level)
//   * histogram H        -> "H.rate"            (window count / interval)
//                           "H.p50", "H.p99"    (percentiles of the
//                                                *window delta* — the
//                                                diffable-snapshot
//                                                machinery, not the
//                                                lifetime population)
//
// Windows where a histogram saw no samples push a rate of 0 but skip
// the percentile series (a 0-latency point would poison baselines);
// percentile series can therefore have gaps.
//
// Every pushed point also updates an EWMA mean/variance baseline for
// its series; once warm, a point more than `z_threshold` sigmas from
// the baseline is flagged anomalous. Sigma has a relative floor so a
// near-constant series does not flag on nanoscopic jitter.
//
// The store itself is clock-free and thread-safe: callers decide when
// a window ends (the Monitor's background thread in production, an
// explicit tick in tests) and hand in the delta + level snapshots.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "vcgra/telemetry/metrics.hpp"

namespace vcgra::telemetry {

struct SeriesPoint {
  std::uint64_t end_ns = 0;     // window end on the trace_now_ns clock
  double interval_seconds = 0;  // window width
  double value = 0;
  double zscore = 0;     // vs the EWMA baseline at push time (0 while warming)
  bool anomaly = false;  // |zscore| >= z_threshold after warmup
};

/// One derived series, oldest point first (at most `capacity` points).
struct SeriesData {
  std::string name;
  std::vector<SeriesPoint> points;
};

struct TimeSeriesOptions {
  std::size_t capacity = 600;      // windows retained per series
  double ewma_alpha = 0.25;        // baseline responsiveness
  double z_threshold = 4.0;        // anomaly flag at |z| >= threshold
  std::size_t warmup_windows = 8;  // points before anomalies can flag
  double sigma_relative_floor = 0.05;  // sigma >= floor * |mean|
};

class TimeSeriesStore {
 public:
  explicit TimeSeriesStore(TimeSeriesOptions options = {});

  /// Ingest one sampling window ending at `end_ns`. `delta` carries the
  /// activity since the previous snapshot (counters and histograms as
  /// produced by MetricsSnapshot::diff_since); `level` is the current
  /// full snapshot (gauges are levels, not flows).
  void push_window(std::uint64_t end_ns, double interval_seconds,
                   const MetricsSnapshot& delta, const MetricsSnapshot& level);

  /// Windows ingested since construction (not capped by capacity).
  std::uint64_t windows() const;

  /// Copy of every series, each trimmed to its last `last_n` points
  /// (0 = all retained points).
  std::vector<SeriesData> series(std::size_t last_n = 0) const;

  /// Latest point of one series; false when the series does not exist
  /// or is empty.
  bool latest(const std::string& name, SeriesPoint* out) const;

  /// Names of series whose most recent point is flagged anomalous.
  std::vector<std::string> last_anomalies() const;

  /// {"windows": N, "interval hint": ..., "series": [{name, points}]}
  /// with each series trimmed to `last_n` points (0 = all).
  std::string to_json(std::size_t last_n = 0) const;

 private:
  struct Series {
    std::vector<SeriesPoint> ring;  // capacity slots once full
    std::size_t head = 0;           // next write slot when full
    std::uint64_t seen = 0;         // total points ever pushed
    double ewma_mean = 0;
    double ewma_var = 0;
  };

  // Pushes one point and runs the anomaly baseline. Caller holds mutex_.
  void push_value(const std::string& name, std::uint64_t end_ns,
                  double interval_seconds, double value);

  TimeSeriesOptions options_;
  mutable std::mutex mutex_;
  std::map<std::string, Series> series_;
  std::uint64_t windows_ = 0;
};

}  // namespace vcgra::telemetry
