// Process-wide runtime metrics: counters, gauges and fixed-log-bucket
// latency histograms.
//
// The paper's whole argument is a latency budget (microsecond
// respecialization vs. seconds of place & route), so the serving layer
// needs measurement that is exact, cheap enough for the hot path, and
// machine-readable:
//
//   * Counter / Gauge — one relaxed std::atomic word each.
//   * LatencyHistogram — HDR-style fixed log buckets over nanoseconds:
//     values below 16 ns land in exact 1 ns buckets, above that each
//     power of two splits into 16 sub-buckets (<= 6.25% relative bucket
//     width) up to ~4400 s. Recording is one atomic increment plus two
//     atomic adds; percentiles are computed from the full population of
//     counts (no sampling window, no overwrite ring), so p50/p95/p99/
//     p999 are exact to one bucket width at any job count.
//   * MetricsRegistry — named metrics with stable references (register
//     once, update lock-free forever). Snapshots are plain values:
//     diffable (benches assert on deltas) and serializable as JSON or a
//     Prometheus-style text dump.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace vcgra::telemetry {

class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Value-type copy of a histogram's bucket population at one instant.
/// Percentiles, diffs and serialization all operate on snapshots so the
/// live histogram never needs more than relaxed atomics.
struct HistogramSnapshot {
  std::vector<std::uint64_t> counts;  // kBucketCount entries (empty = all zero)
  std::uint64_t count = 0;
  double sum_seconds = 0;
  double max_seconds = 0;

  /// Nearest-rank percentile over the bucket population, returned as the
  /// matched bucket's upper edge (so the true sample value is <= the
  /// returned value and within one bucket width of it). 0 when empty.
  double percentile(double fraction) const;
  /// Several fractions in one bucket walk. `fractions` must be sorted.
  std::vector<double> percentiles(const std::vector<double>& fractions) const;
  double mean_seconds() const { return count ? sum_seconds / static_cast<double>(count) : 0.0; }

  /// Samples recorded since `base` (bucket-wise subtraction). `base`
  /// must be an earlier snapshot of the same histogram.
  HistogramSnapshot diff_since(const HistogramSnapshot& base) const;

  /// "n=120 mean=1.2 ms p50=900 us p99=4.1 ms max=6 ms"
  std::string summary() const;
};

/// Fixed-log-bucket latency histogram over [1 ns, ~4400 s], lock-free.
class LatencyHistogram {
 public:
  static constexpr int kSubBucketBits = 4;  // 16 sub-buckets per power of two
  static constexpr int kSubBuckets = 1 << kSubBucketBits;
  static constexpr int kMaxExponent = 41;  // covers 2^42-1 ns (~4400 s > 1 ks)
  static constexpr int kBucketCount =
      (kMaxExponent - kSubBucketBits + 2) * kSubBuckets;  // 624

  /// Bucket index of a nanosecond value (clamped into range).
  static int bucket_index(std::uint64_t ns);
  /// Largest nanosecond value mapping to `index` (the bucket upper edge).
  static std::uint64_t bucket_max_ns(int index);
  /// Smallest nanosecond value mapping to `index`.
  static std::uint64_t bucket_min_ns(int index);

  void record_ns(std::uint64_t ns);
  void record_seconds(double seconds);

  HistogramSnapshot snapshot() const;

 private:
  std::atomic<std::uint64_t> counts_[kBucketCount] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_ns_{0};
  std::atomic<std::uint64_t> max_ns_{0};
};

/// Value snapshot of a whole registry; diffable and serializable.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// Activity since `base`: counter/histogram deltas (gauges keep their
  /// current value — they are levels, not flows). Metrics absent from
  /// `base` diff against zero.
  MetricsSnapshot diff_since(const MetricsSnapshot& base) const;

  std::string to_json() const;
  /// Prometheus text exposition: counters/gauges as-is, histograms as
  /// cumulative `_bucket{le="..."}` series (one edge per power-of-two
  /// block, so bucket counts are non-decreasing and end at `+Inf` ==
  /// `_count`) plus `_sum`/`_count`. Metric names go through
  /// prometheus_metric_name(); label values through
  /// prometheus_label_escape().
  std::string to_prometheus() const;
};

/// Prometheus-conformant metric name: any character outside
/// [a-zA-Z0-9_:] becomes '_', a leading digit gets an extra '_', and
/// the result is prefixed "vcgra_".
std::string prometheus_metric_name(const std::string& name);

/// Escapes a label value for the text exposition format: backslash,
/// double quote and newline become \\, \" and \n.
std::string prometheus_label_escape(const std::string& value);

/// Named-metric directory. Registration takes a mutex once per name;
/// the returned references are stable for the registry's lifetime, so
/// hot paths cache them (e.g. in a function-local static) and update
/// without any lock.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  LatencyHistogram& histogram(const std::string& name);

  MetricsSnapshot snapshot() const;

  /// The process-wide registry every subsystem reports into.
  static MetricsRegistry& global();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_;
};

/// Shorthand for MetricsRegistry::global().
MetricsRegistry& metrics();

}  // namespace vcgra::telemetry
