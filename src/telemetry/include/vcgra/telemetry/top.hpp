// Terminal rendering for vcgra_top, the live service console.
//
// The renderer is a pure function from a parsed stats document to one
// frame of text, so test_telemetry can prove a frame renders headlessly
// from a snapshot file and the tool stays a thin loop (read file ->
// parse -> render -> repaint). It accepts both document shapes the
// runtime produces and degrades gracefully — sections whose keys are
// absent are simply omitted:
//
//   * the example/service stats file:
//       {"service": <ServiceStats>, "process": <MetricsSnapshot>,
//        "monitor": {"health": ..., "series": ...}}
//   * the Monitor's live export (ServiceOptions::monitor_export_path):
//       {"health": ..., "series": ...}
#pragma once

#include <string>
#include <vector>

#include "vcgra/telemetry/json.hpp"

namespace vcgra::telemetry {

struct TopOptions {
  bool color = false;        // ANSI colors on health verdicts
  std::size_t spark_width = 32;  // series sparkline window (0 disables)
};

/// One frame of the console: throughput, latency percentiles, cache and
/// scheduler tiers, queue/arena gauges, health verdicts, anomaly flags
/// and sparklines of the monitored series.
std::string render_top_frame(const JsonValue& doc, const TopOptions& options = {});

/// ASCII sparkline of `values` (empty input -> empty string), scaled to
/// the series' own min..max.
std::string sparkline(const std::vector<double>& values, std::size_t width);

}  // namespace vcgra::telemetry
