// Health/SLO engine and the continuous Monitor that feeds it.
//
// A rule is declarative: pick a window-scoped input (counter rate,
// counter/sum ratio, gauge level, histogram window-p50/p99/mean/rate),
// a direction, and two thresholds. Each sampling window every rule is
// evaluated against that window's delta + level snapshots:
//
//   kBelow:  ok when value <= warn, degraded when value <= fail
//   kAbove:  ok when value >= warn, degraded when value >= fail
//   (anything past `fail` is failing)
//
// Rules with nothing to measure this window (metric absent, histogram
// saw no samples, ratio denominator zero) report ok with
// `has_data = false` — an idle service is not an unhealthy one.
//
// The Monitor is the production driver: a background thread snapshots
// the process registry every `interval_seconds`, diffs against the
// previous snapshot, pushes the window into a TimeSeriesStore (rates,
// window percentiles, EWMA+z anomaly flags), evaluates the rule set,
// logs every per-rule and overall status transition through the
// leveled logger, and optionally atomically rewrites a JSON export for
// live consumers (`vcgra_top --watch`). `tick_at(now_ns)` is the whole
// deterministic core — tests drive it directly with synthetic clocks
// and never start the thread.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "vcgra/telemetry/metrics.hpp"
#include "vcgra/telemetry/timeseries.hpp"

namespace vcgra::telemetry {

enum class HealthStatus { kOk = 0, kDegraded = 1, kFailing = 2 };

const char* to_string(HealthStatus status);

struct HealthRule {
  enum class Input {
    kCounterRate,    // metric delta / interval (1/s)
    kCounterRatio,   // metric delta / sum of denominator deltas
    kGaugeLevel,     // sampled gauge value
    kHistogramP50,   // window-delta p50 (seconds)
    kHistogramP99,   // window-delta p99 (seconds)
    kHistogramMean,  // window-delta mean (seconds)
    kHistogramRate,  // window-delta count / interval (1/s)
  };
  enum class Direction {
    kBelow,  // healthy when small (latency, errors, depth)
    kAbove,  // healthy when large (hit rates)
  };

  std::string name;    // verdict key, e.g. "latency_p99"
  Input input = Input::kCounterRate;
  std::string metric;  // registry metric the rule reads
  std::vector<std::string> denominator;  // kCounterRatio only
  Direction direction = Direction::kBelow;
  double warn_threshold = 0;  // ok/degraded boundary
  double fail_threshold = 0;  // degraded/failing boundary
};

struct HealthVerdict {
  std::string rule;
  HealthStatus status = HealthStatus::kOk;
  double value = 0;
  bool has_data = false;  // false: nothing to measure this window -> ok
};

struct HealthReport {
  HealthStatus overall = HealthStatus::kOk;
  std::vector<HealthVerdict> verdicts;
  std::vector<std::string> anomalies;  // series flagged by EWMA+z this window
  std::uint64_t window_end_ns = 0;
  std::uint64_t windows_evaluated = 0;

  std::string to_json() const;
  std::string to_string() const;  // one line: "degraded [latency_p99=...]"
};

/// Stateless per-window rule evaluation (the Monitor adds continuity:
/// transition logs, anomaly series, report history).
class HealthEngine {
 public:
  explicit HealthEngine(std::vector<HealthRule> rules);

  const std::vector<HealthRule>& rules() const { return rules_; }

  /// Evaluates every rule against one window. `interval_seconds` scales
  /// rate inputs; `delta` carries counter/histogram activity since the
  /// previous snapshot; `level` carries gauge levels.
  HealthReport evaluate(double interval_seconds, const MetricsSnapshot& delta,
                        const MetricsSnapshot& level) const;

 private:
  std::vector<HealthRule> rules_;
};

/// The default SLO set for an OverlayService process. Thresholds are
/// ServiceOptions-tunable where they matter (latency, error rate); the
/// structural rules (arena grows, span drops) are zero-tolerance by
/// design — both events mean a sizing assumption broke.
struct ServiceSloOptions {
  double latency_warn_seconds = 0.050;
  double latency_fail_seconds = 0.500;
  double error_rate_warn = 0.01;
  double error_rate_fail = 0.10;
  double cache_hit_rate_warn = 0.50;  // kAbove: below this is degraded
  double cache_hit_rate_fail = 0.05;  // below this is failing
  double queue_depth_warn = 64;
  double queue_depth_fail = 4096;
};

std::vector<HealthRule> default_service_rules(const ServiceSloOptions& slo = {});

struct MonitorOptions {
  double interval_seconds = 0.1;      // sampling window
  TimeSeriesOptions series;           // ring capacity, EWMA, z threshold
  std::vector<HealthRule> rules;      // empty -> default_service_rules()
  std::string export_path;            // non-empty: atomic JSON rewrite per tick
  std::size_t export_last_windows = 120;  // series tail length in the export
};

/// Background sampler + health evaluator over a MetricsRegistry.
class Monitor {
 public:
  explicit Monitor(MetricsRegistry& registry, MonitorOptions options = {});
  ~Monitor();
  Monitor(const Monitor&) = delete;
  Monitor& operator=(const Monitor&) = delete;

  /// Starts the background sampling thread (idempotent).
  void start();
  /// Stops and joins the thread; tick state is kept.
  void stop();

  /// One deterministic sampling window ending at `now_ns`: snapshot,
  /// diff, series push, rule evaluation, transition logs, export.
  /// Thread-safe; the background thread is just a timed loop over this.
  HealthReport tick_at(std::uint64_t now_ns);

  /// Latest report (default-constructed all-ok before the first tick).
  HealthReport health() const;
  const TimeSeriesStore& series() const { return store_; }

  /// {"health": ..., "series": ...} — the export_path payload.
  std::string to_json() const;

 private:
  void run();

  MetricsRegistry& registry_;
  MonitorOptions options_;
  HealthEngine engine_;
  TimeSeriesStore store_;

  mutable std::mutex mutex_;  // tick state + last report
  MetricsSnapshot previous_;
  std::uint64_t previous_ns_ = 0;
  bool have_previous_ = false;
  HealthReport last_report_;
  std::map<std::string, HealthStatus> last_status_;

  std::mutex thread_mutex_;
  std::condition_variable wake_;
  std::thread thread_;
  bool running_ = false;
};

/// Writes `payload` to `path` atomically (temp file + rename) so a
/// concurrent reader never sees a torn write. Returns false on IO error.
bool atomic_write_file(const std::string& path, const std::string& payload);

}  // namespace vcgra::telemetry
