// Low-overhead span tracer with Chrome trace_event export.
//
// Every pipeline stage (parse -> structure compile -> specialize ->
// store load/save -> plan lower -> queue wait -> execute -> boundary
// encode/decode) brackets itself with VCGRA_TRACE_SPAN("stage.name").
// A span is an RAII guard:
//
//   * tracer disabled and no job collector installed: the constructor is
//     one predictable branch (two relaxed thread/atomic loads) and the
//     destructor one more — cheap enough to leave compiled into the
//     router/annealer-adjacent hot paths (bench_runtime gate [G]);
//   * enabled: two steady_clock reads plus a handful of stores into a
//     per-thread ring buffer (no locks, no allocation on the hot path).
//
// Rings are exported as Chrome trace_event JSON ("X" complete events,
// microsecond timestamps) loadable by chrome://tracing and Perfetto.
// Spans record the per-thread nesting depth and the active job's trace
// id, so one job's tree can be followed across the submit thread, the
// executor worker and the write-behind thread.
//
// A JobTrace collector (installed thread-locally by JobTraceScope while
// a job executes) additionally captures the job's own spans even when
// the global tracer is off — that is what feeds JobResult's per-stage
// breakdown and the slow-job span-tree log.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace vcgra::telemetry {

/// Monotonic nanoseconds since process start (one epoch for every ring).
std::uint64_t trace_now_ns();

/// One aggregated pipeline stage of a job, for JobResult.
struct StageTiming {
  std::string name;
  double seconds = 0;
};

/// Per-job span collector: closed spans, bounded, with depths relative
/// to the installing scope. Install via JobTraceScope; never shared
/// across threads.
class JobTrace {
 public:
  struct Span {
    const char* name = nullptr;  // string literal (from VCGRA_TRACE_SPAN)
    int depth = 0;               // 0 = direct child of the job scope
    std::uint64_t start_ns = 0;
    std::uint64_t dur_ns = 0;
  };
  static constexpr std::size_t kMaxSpans = 96;

  std::uint64_t trace_id = 0;
  std::vector<Span> spans;      // closing order (children before parents)
  std::uint64_t dropped = 0;    // spans past kMaxSpans (tree stays bounded)

  void add(const char* name, int depth, std::uint64_t start_ns,
           std::uint64_t dur_ns);

  /// Spans at `depth` aggregated by name, in first-seen chronological
  /// order. At the default depth 0 this is the non-overlapping stage
  /// decomposition of the job (durations sum to ~the job latency minus
  /// untraced gaps); depth 1 decomposes a still-open depth-0 wrapper
  /// span (run_graph's graph.run -> its graph.stage sweeps).
  std::vector<StageTiming> stage_breakdown(int depth = 0) const;

  /// Indented span tree (chronological, nested) for slow-job logging.
  std::string tree_string() const;
};

class Tracer {
 public:
  /// Spans retained per thread ring; older spans are overwritten (and
  /// counted as dropped) past this.
  static constexpr std::size_t kRingCapacity = 1 << 14;

  static bool enabled();
  static void set_enabled(bool on);

  /// Drop every recorded span (rings stay registered). Tests/benches.
  static void reset();

  /// Record an already-measured complete span (e.g. queue wait, whose
  /// start happened on another thread). No-op when the tracer is off.
  static void record_span(const char* name, std::uint64_t start_ns,
                          std::uint64_t dur_ns, std::uint64_t trace_id = 0);

  /// Chrome trace_event JSON of every span recorded so far.
  static std::string chrome_trace_json();
  /// Write chrome_trace_json() to `path`; false (and a warning log) on
  /// I/O failure.
  static bool export_chrome_trace(const std::string& path);

  /// Total spans currently held across all thread rings (post-overwrite).
  static std::size_t recorded_spans();

  /// Spans lost to ring overwrite since the last reset(), summed across
  /// threads. Every drop also bumps the process-wide counter metric
  /// "trace.dropped_spans" (monotonic — reset() does not rewind it), so
  /// exports and the health engine see truncation without asking the
  /// tracer. chrome_trace_json() carries the same total as a top-level
  /// "droppedSpans" field, which `vcgra_stats --check-trace` warns on.
  static std::uint64_t dropped_spans();
};

/// For sequential stage blocks that share one scope (the compiler's
/// synth -> map -> place -> route) where an RAII guard cannot bracket a
/// single stage: capture child_span_start() before the stage, then
/// record_child_span() after it. The pair records a complete span as a
/// child of the currently open span; both are no-ops (child_span_start
/// returns 0 without reading the clock) when the tracer is off and no
/// job collector is installed.
std::uint64_t child_span_start();
void record_child_span(const char* name, std::uint64_t start_ns);

/// Installs `collector` as the calling thread's job collector for the
/// scope's lifetime and stamps it with a fresh process-unique trace id.
/// Nested scopes stack (the outer one resumes on destruction).
class JobTraceScope {
 public:
  explicit JobTraceScope(JobTrace* collector);
  ~JobTraceScope();
  JobTraceScope(const JobTraceScope&) = delete;
  JobTraceScope& operator=(const JobTraceScope&) = delete;

 private:
  JobTrace* previous_ = nullptr;
  int previous_base_depth_ = 0;
};

namespace detail {

extern std::atomic<bool> g_trace_enabled;
extern thread_local JobTrace* t_collector;
extern thread_local int t_depth;
extern thread_local int t_base_depth;

void span_begin_slow(const char* name, std::uint64_t* start_ns);
void span_end_slow(const char* name, std::uint64_t start_ns);

/// RAII span. The inactive path (tracer off, no collector) is a single
/// well-predicted branch in both constructor and destructor.
class SpanGuard {
 public:
  explicit SpanGuard(const char* name) {
    if (!g_trace_enabled.load(std::memory_order_relaxed) &&
        t_collector == nullptr) {
      return;  // the one-branch disabled path
    }
    name_ = name;
    span_begin_slow(name, &start_ns_);
  }
  ~SpanGuard() {
    if (name_ == nullptr) return;
    span_end_slow(name_, start_ns_);
  }
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

 private:
  const char* name_ = nullptr;
  std::uint64_t start_ns_ = 0;
};

}  // namespace detail
}  // namespace vcgra::telemetry

#define VCGRA_TRACE_CONCAT_INNER(a, b) a##b
#define VCGRA_TRACE_CONCAT(a, b) VCGRA_TRACE_CONCAT_INNER(a, b)
/// Brackets the enclosing scope as one trace span. `name` must be a
/// string literal (the tracer stores the pointer, not a copy).
#define VCGRA_TRACE_SPAN(name)                                \
  ::vcgra::telemetry::detail::SpanGuard VCGRA_TRACE_CONCAT(   \
      vcgra_trace_span_, __LINE__)(name)
