// Perf-regression comparison of two metrics/bench JSON snapshots.
//
// BENCH_exec.json is uploaded by every CI run but was never compared
// against the previous one — a 2x latency regression only surfaced if a
// human re-read the tables. compare_snapshots() diffs two snapshot
// documents leaf-wise (every numeric leaf, dotted-path keys) and judges
// each perf-relevant leaf against a per-metric noise threshold:
//
//   * direction is inferred from the metric name — throughput-like
//     leaves (per_second, speedup, hit_rate) regress when they drop,
//     time-like leaves (seconds, latency, p50/p99/..., cycles) regress
//     when they grow; other leaves are informational only (counts like
//     jobs_completed legitimately differ run to run);
//   * the noise threshold widens with tail depth (p999/max are far
//     noisier than a mean over thousands of jobs): warn at the
//     threshold, fail at 2x;
//   * leaves present in only one snapshot are informational (new
//     benches appear, old ones retire — that is not a regression).
//
// The report renders as a pass/warn/fail ASCII table and as JSON for
// the CI artifact. `vcgra_stats --regress old.json new.json` is the CLI
// wrapper; CI runs it report-only against the previous cached artifact.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "vcgra/telemetry/json.hpp"

namespace vcgra::telemetry {

struct RegressOptions {
  /// Noise threshold for leaves with no more specific rule.
  double default_tolerance = 0.10;
  /// Overrides matched by substring against the dotted leaf path, most
  /// specific (longest) match wins. Merged over the built-in defaults
  /// (p999/max 50%, p99 30%, p50/mean 15%).
  std::map<std::string, double> tolerance_overrides;
  /// Failures require the change to also exceed this absolute floor in
  /// seconds-like units, so a 3 ns -> 7 ns jitter on a nanosecond-scale
  /// leaf cannot fail a run on ratio alone.
  double absolute_floor = 1e-6;
};

struct RegressEntry {
  enum class Direction { kLowerBetter, kHigherBetter, kNeutral };
  enum class Status { kPass, kWarn, kFail, kInfo };

  std::string metric;     // dotted leaf path
  double old_value = 0;
  double new_value = 0;
  double change = 0;      // (new - old) / |old|, signed
  double tolerance = 0;   // noise threshold applied
  Direction direction = Direction::kNeutral;
  Status status = Status::kInfo;
};

struct RegressReport {
  std::vector<RegressEntry> entries;  // leaf-path order
  int passes = 0;
  int warns = 0;
  int fails = 0;
  int infos = 0;

  bool ok() const { return fails == 0; }
  /// "regression: 2 fail, 1 warn, 40 pass (63 informational)"
  std::string summary() const;
  /// ASCII table of the verdicts. By default only fail/warn rows print
  /// (empty string when the run is clean); `include_all` adds the pass
  /// and informational rows.
  std::string table(bool include_all = false) const;
  std::string to_json() const;
};

/// Every numeric leaf of `value` under dotted paths into `out`
/// (booleans and strings are skipped; arrays index as ".0", ".1", ...).
void flatten_numeric_leaves(const JsonValue& value, const std::string& prefix,
                            std::map<std::string, double>* out);

/// Leaf-wise comparison of two parsed snapshot documents.
RegressReport compare_snapshots(const JsonValue& old_doc,
                                const JsonValue& new_doc,
                                const RegressOptions& options = {});

}  // namespace vcgra::telemetry
