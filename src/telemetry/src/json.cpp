#include "vcgra/telemetry/json.hpp"

#include <cctype>
#include <cstdlib>

#include "vcgra/common/strings.hpp"

namespace vcgra::telemetry {

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind != Kind::Object) return nullptr;
  const JsonValue* found = nullptr;
  for (const auto& [name, value] : object) {
    if (name == key) found = &value;  // last duplicate wins
  }
  return found;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  bool parse(JsonValue* out, std::string* error) {
    skip_ws();
    if (!parse_value(out)) {
      if (error != nullptr) {
        *error = common::strprintf("%s at byte %zu", message_.c_str(), pos_);
      }
      return false;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      if (error != nullptr) {
        *error = common::strprintf("trailing garbage at byte %zu", pos_);
      }
      return false;
    }
    return true;
  }

 private:
  bool fail(const std::string& message) {
    if (message_.empty()) message_ = message;
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool expect_literal(const char* literal) {
    for (const char* p = literal; *p != '\0'; ++p) {
      if (pos_ >= text_.size() || text_[pos_] != *p) {
        return fail(common::strprintf("expected '%s'", literal));
      }
      ++pos_;
    }
    return true;
  }

  bool parse_value(JsonValue* out) {
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return parse_object(out);
      case '[':
        return parse_array(out);
      case '"':
        out->kind = JsonValue::Kind::String;
        return parse_string(&out->string);
      case 't':
        out->kind = JsonValue::Kind::Bool;
        out->boolean = true;
        return expect_literal("true");
      case 'f':
        out->kind = JsonValue::Kind::Bool;
        out->boolean = false;
        return expect_literal("false");
      case 'n':
        out->kind = JsonValue::Kind::Null;
        return expect_literal("null");
      default:
        return parse_number(out);
    }
  }

  bool parse_object(JsonValue* out) {
    out->kind = JsonValue::Kind::Object;
    ++pos_;  // '{'
    skip_ws();
    if (eat('}')) return true;
    while (true) {
      skip_ws();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return fail("expected object key string");
      }
      if (!parse_string(&key)) return false;
      skip_ws();
      if (!eat(':')) return fail("expected ':' after object key");
      skip_ws();
      JsonValue value;
      if (!parse_value(&value)) return false;
      out->object.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (eat(',')) continue;
      if (eat('}')) return true;
      return fail("expected ',' or '}' in object");
    }
  }

  bool parse_array(JsonValue* out) {
    out->kind = JsonValue::Kind::Array;
    ++pos_;  // '['
    skip_ws();
    if (eat(']')) return true;
    while (true) {
      skip_ws();
      JsonValue value;
      if (!parse_value(&value)) return false;
      out->array.push_back(std::move(value));
      skip_ws();
      if (eat(',')) continue;
      if (eat(']')) return true;
      return fail("expected ',' or ']' in array");
    }
  }

  bool parse_string(std::string* out) {
    ++pos_;  // opening '"'
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("raw control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        ++pos_;
        continue;
      }
      ++pos_;  // '\\'
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return fail("bad hex digit in \\u escape");
            }
          }
          // UTF-8 encode (BMP only; unpaired surrogates pass through).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return fail("unknown escape in string");
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(JsonValue* out) {
    const std::size_t start = pos_;
    if (eat('-')) {
    }
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (eat('.')) {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (token.empty() || end == nullptr || *end != '\0' ||
        end == token.c_str()) {
      pos_ = start;
      return fail("expected a JSON value");
    }
    out->kind = JsonValue::Kind::Number;
    out->number = value;
    return true;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::string message_;
};

}  // namespace

bool parse_json(const std::string& text, JsonValue* out, std::string* error) {
  Parser parser(text);
  return parser.parse(out, error);
}

}  // namespace vcgra::telemetry
