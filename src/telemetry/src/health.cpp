#include "vcgra/telemetry/health.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <utility>

#include "vcgra/common/log.hpp"
#include "vcgra/common/strings.hpp"
#include "vcgra/telemetry/trace.hpp"

namespace vcgra::telemetry {

const char* to_string(HealthStatus status) {
  switch (status) {
    case HealthStatus::kOk:
      return "ok";
    case HealthStatus::kDegraded:
      return "degraded";
    case HealthStatus::kFailing:
      return "failing";
  }
  return "ok";
}

namespace {

HealthStatus judge(HealthRule::Direction direction, double value, double warn,
                   double fail) {
  if (direction == HealthRule::Direction::kBelow) {
    if (value <= warn) return HealthStatus::kOk;
    if (value <= fail) return HealthStatus::kDegraded;
    return HealthStatus::kFailing;
  }
  if (value >= warn) return HealthStatus::kOk;
  if (value >= fail) return HealthStatus::kDegraded;
  return HealthStatus::kFailing;
}

}  // namespace

HealthEngine::HealthEngine(std::vector<HealthRule> rules)
    : rules_(std::move(rules)) {}

HealthReport HealthEngine::evaluate(double interval_seconds,
                                    const MetricsSnapshot& delta,
                                    const MetricsSnapshot& level) const {
  const double dt = interval_seconds > 0 ? interval_seconds : 1e-9;
  HealthReport report;
  report.verdicts.reserve(rules_.size());
  for (const HealthRule& rule : rules_) {
    HealthVerdict verdict;
    verdict.rule = rule.name;
    switch (rule.input) {
      case HealthRule::Input::kCounterRate: {
        const auto it = delta.counters.find(rule.metric);
        if (it != delta.counters.end()) {
          verdict.has_data = true;
          verdict.value = static_cast<double>(it->second) / dt;
        }
        break;
      }
      case HealthRule::Input::kCounterRatio: {
        const auto it = delta.counters.find(rule.metric);
        const double numerator =
            it != delta.counters.end() ? static_cast<double>(it->second) : 0.0;
        double denominator = 0;
        for (const std::string& name : rule.denominator) {
          const auto dit = delta.counters.find(name);
          if (dit != delta.counters.end()) {
            denominator += static_cast<double>(dit->second);
          }
        }
        if (denominator > 0) {
          verdict.has_data = true;
          verdict.value = numerator / denominator;
        }
        break;
      }
      case HealthRule::Input::kGaugeLevel: {
        const auto it = level.gauges.find(rule.metric);
        if (it != level.gauges.end()) {
          verdict.has_data = true;
          verdict.value = static_cast<double>(it->second);
        }
        break;
      }
      case HealthRule::Input::kHistogramP50:
      case HealthRule::Input::kHistogramP99:
      case HealthRule::Input::kHistogramMean:
      case HealthRule::Input::kHistogramRate: {
        const auto it = delta.histograms.find(rule.metric);
        if (it != delta.histograms.end()) {
          const HistogramSnapshot& hist = it->second;
          if (rule.input == HealthRule::Input::kHistogramRate) {
            verdict.has_data = true;
            verdict.value = static_cast<double>(hist.count) / dt;
          } else if (hist.count > 0) {
            verdict.has_data = true;
            if (rule.input == HealthRule::Input::kHistogramP50) {
              verdict.value = hist.percentile(0.50);
            } else if (rule.input == HealthRule::Input::kHistogramP99) {
              verdict.value = hist.percentile(0.99);
            } else {
              verdict.value = hist.mean_seconds();
            }
          }
        }
        break;
      }
    }
    // A window with nothing to measure is healthy by definition: idle
    // is not degraded, and a ratio without a denominator has no signal.
    verdict.status = verdict.has_data
                         ? judge(rule.direction, verdict.value,
                                 rule.warn_threshold, rule.fail_threshold)
                         : HealthStatus::kOk;
    report.overall = std::max(report.overall, verdict.status);
    report.verdicts.push_back(std::move(verdict));
  }
  return report;
}

std::vector<HealthRule> default_service_rules(const ServiceSloOptions& slo) {
  // The structural rules are zero-tolerance: one arena grow or one
  // dropped span per window means a sizing assumption broke, which is
  // worth a degraded verdict but never failing on its own.
  constexpr double kNeverFail = 1e300;
  std::vector<HealthRule> rules;
  rules.push_back({"latency_p99", HealthRule::Input::kHistogramP99,
                   "service.latency", {}, HealthRule::Direction::kBelow,
                   slo.latency_warn_seconds, slo.latency_fail_seconds});
  rules.push_back({"error_rate", HealthRule::Input::kCounterRatio,
                   "service.jobs_failed",
                   {"service.jobs_ok", "service.jobs_failed"},
                   HealthRule::Direction::kBelow, slo.error_rate_warn,
                   slo.error_rate_fail});
  rules.push_back({"cache_hit_rate", HealthRule::Input::kCounterRatio,
                   "cache.hits", {"cache.hits", "cache.misses"},
                   HealthRule::Direction::kAbove, slo.cache_hit_rate_warn,
                   slo.cache_hit_rate_fail});
  rules.push_back({"queue_depth", HealthRule::Input::kGaugeLevel,
                   "pool.queue_depth", {}, HealthRule::Direction::kBelow,
                   slo.queue_depth_warn, slo.queue_depth_fail});
  rules.push_back({"arena_grows", HealthRule::Input::kCounterRate,
                   "exec.arena_grows", {}, HealthRule::Direction::kBelow, 0.0,
                   kNeverFail});
  rules.push_back({"trace_drops", HealthRule::Input::kCounterRate,
                   "trace.dropped_spans", {}, HealthRule::Direction::kBelow,
                   0.0, kNeverFail});
  return rules;
}

std::string HealthReport::to_json() const {
  std::string out = common::strprintf(
      "{\n  \"overall\": \"%s\",\n  \"window_end_ns\": %llu,\n"
      "  \"windows_evaluated\": %llu,\n  \"rules\": {",
      telemetry::to_string(overall),
      static_cast<unsigned long long>(window_end_ns),
      static_cast<unsigned long long>(windows_evaluated));
  bool first = true;
  for (const HealthVerdict& v : verdicts) {
    out += common::strprintf(
        "%s\n    \"%s\": {\"status\": \"%s\", \"value\": %.9g, "
        "\"has_data\": %s}",
        first ? "" : ",", v.rule.c_str(), telemetry::to_string(v.status),
        v.value, v.has_data ? "true" : "false");
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"anomalies\": [";
  first = true;
  for (const std::string& name : anomalies) {
    out += common::strprintf("%s\"%s\"", first ? "" : ", ", name.c_str());
    first = false;
  }
  out += "]\n}\n";
  return out;
}

std::string HealthReport::to_string() const {
  std::string out = telemetry::to_string(overall);
  std::string detail;
  for (const HealthVerdict& v : verdicts) {
    if (v.status == HealthStatus::kOk) continue;
    if (!detail.empty()) detail += "; ";
    detail += common::strprintf("%s=%.6g %s", v.rule.c_str(), v.value,
                                telemetry::to_string(v.status));
  }
  if (!detail.empty()) out += " [" + detail + "]";
  return out;
}

bool atomic_write_file(const std::string& path, const std::string& payload) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;
  const std::size_t written = std::fwrite(payload.data(), 1, payload.size(), f);
  const bool flushed = std::fclose(f) == 0 && written == payload.size();
  if (!flushed) {
    std::remove(tmp.c_str());
    return false;
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

Monitor::Monitor(MetricsRegistry& registry, MonitorOptions options)
    : registry_(registry),
      options_(std::move(options)),
      engine_(options_.rules.empty() ? default_service_rules()
                                     : options_.rules),
      store_(options_.series) {
  if (options_.interval_seconds < 1e-3) options_.interval_seconds = 1e-3;
}

Monitor::~Monitor() { stop(); }

HealthReport Monitor::tick_at(std::uint64_t now_ns) {
  const MetricsSnapshot current = registry_.snapshot();
  std::string export_payload;
  HealthReport report;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    double interval = options_.interval_seconds;
    if (have_previous_ && now_ns > previous_ns_) {
      interval = static_cast<double>(now_ns - previous_ns_) * 1e-9;
    }
    const MetricsSnapshot delta = current.diff_since(previous_);
    store_.push_window(now_ns, interval, delta, current);
    report = engine_.evaluate(interval, delta, current);
    report.anomalies = store_.last_anomalies();
    report.window_end_ns = now_ns;
    report.windows_evaluated = store_.windows();

    // Transition logs: worsening is a warning, recovery is info. The
    // very first window only logs if it is already unhealthy.
    for (const HealthVerdict& v : report.verdicts) {
      const auto it = last_status_.find(v.rule);
      const HealthStatus before =
          it != last_status_.end() ? it->second : HealthStatus::kOk;
      if (v.status != before) {
        if (static_cast<int>(v.status) > static_cast<int>(before)) {
          VCGRA_LOG_WARN() << "health: rule '" << v.rule << "' "
                           << telemetry::to_string(before) << " -> "
                           << telemetry::to_string(v.status)
                           << " (value=" << v.value << ")";
        } else {
          VCGRA_LOG_INFO() << "health: rule '" << v.rule << "' "
                           << telemetry::to_string(before) << " -> "
                           << telemetry::to_string(v.status);
        }
      }
      last_status_[v.rule] = v.status;
    }
    if (report.overall != last_report_.overall) {
      if (static_cast<int>(report.overall) >
          static_cast<int>(last_report_.overall)) {
        VCGRA_LOG_WARN() << "health: overall "
                         << telemetry::to_string(last_report_.overall)
                         << " -> " << report.to_string();
      } else {
        VCGRA_LOG_INFO() << "health: overall "
                         << telemetry::to_string(last_report_.overall)
                         << " -> " << telemetry::to_string(report.overall);
      }
    }

    previous_ = current;
    previous_ns_ = now_ns;
    have_previous_ = true;
    last_report_ = report;
    if (!options_.export_path.empty()) {
      export_payload = "{\n\"health\": " + report.to_json() + ",\n\"series\": " +
                       store_.to_json(options_.export_last_windows) + "}\n";
    }
  }
  if (!export_payload.empty() &&
      !atomic_write_file(options_.export_path, export_payload)) {
    VCGRA_LOG_WARN() << "health: failed to export monitor state to '"
                     << options_.export_path << "'";
  }
  return report;
}

HealthReport Monitor::health() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return last_report_;
}

std::string Monitor::to_json() const {
  HealthReport report;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    report = last_report_;
  }
  return "{\n\"health\": " + report.to_json() + ",\n\"series\": " +
         store_.to_json(options_.export_last_windows) + "}\n";
}

void Monitor::start() {
  std::lock_guard<std::mutex> lock(thread_mutex_);
  if (running_) return;
  running_ = true;
  thread_ = std::thread([this] { run(); });
}

void Monitor::stop() {
  {
    std::lock_guard<std::mutex> lock(thread_mutex_);
    if (!running_) return;
    running_ = false;
  }
  wake_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void Monitor::run() {
  const auto interval = std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::duration<double>(options_.interval_seconds));
  std::unique_lock<std::mutex> lock(thread_mutex_);
  while (running_) {
    if (wake_.wait_for(lock, interval, [this] { return !running_; })) break;
    lock.unlock();
    tick_at(trace_now_ns());
    lock.lock();
  }
}

}  // namespace vcgra::telemetry
