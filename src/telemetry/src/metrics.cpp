#include "vcgra/telemetry/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "vcgra/common/strings.hpp"

namespace vcgra::telemetry {

namespace {

constexpr std::uint64_t kMaxNs =
    (std::uint64_t{1} << (LatencyHistogram::kMaxExponent + 1)) - 1;

std::uint64_t seconds_to_ns(double seconds) {
  if (!(seconds > 0)) return 0;  // negatives and NaNs clamp to the floor
  const double ns = seconds * 1e9;
  if (ns >= static_cast<double>(kMaxNs)) return kMaxNs;
  return static_cast<std::uint64_t>(std::llround(ns));
}

}  // namespace

int LatencyHistogram::bucket_index(std::uint64_t ns) {
  if (ns > kMaxNs) ns = kMaxNs;
  if (ns < kSubBuckets) return static_cast<int>(ns);
  const int msb = std::bit_width(ns) - 1;  // >= kSubBucketBits
  const int shift = msb - kSubBucketBits;
  const int sub = static_cast<int>((ns >> shift) & (kSubBuckets - 1));
  return (msb - kSubBucketBits + 1) * kSubBuckets + sub;
}

std::uint64_t LatencyHistogram::bucket_min_ns(int index) {
  if (index < kSubBuckets) return static_cast<std::uint64_t>(index);
  const int msb = index / kSubBuckets + kSubBucketBits - 1;
  const int sub = index % kSubBuckets;
  const int shift = msb - kSubBucketBits;
  return (std::uint64_t{kSubBuckets} + static_cast<std::uint64_t>(sub)) << shift;
}

std::uint64_t LatencyHistogram::bucket_max_ns(int index) {
  if (index < kSubBuckets) return static_cast<std::uint64_t>(index);
  const int msb = index / kSubBuckets + kSubBucketBits - 1;
  const int shift = msb - kSubBucketBits;
  return bucket_min_ns(index) + (std::uint64_t{1} << shift) - 1;
}

void LatencyHistogram::record_ns(std::uint64_t ns) {
  if (ns > kMaxNs) ns = kMaxNs;
  counts_[bucket_index(ns)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_ns_.fetch_add(ns, std::memory_order_relaxed);
  std::uint64_t seen = max_ns_.load(std::memory_order_relaxed);
  while (ns > seen &&
         !max_ns_.compare_exchange_weak(seen, ns, std::memory_order_relaxed)) {
  }
}

void LatencyHistogram::record_seconds(double seconds) {
  record_ns(seconds_to_ns(seconds));
}

HistogramSnapshot LatencyHistogram::snapshot() const {
  HistogramSnapshot snap;
  snap.counts.resize(kBucketCount);
  for (int i = 0; i < kBucketCount; ++i) {
    snap.counts[static_cast<std::size_t>(i)] =
        counts_[i].load(std::memory_order_relaxed);
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum_seconds =
      static_cast<double>(sum_ns_.load(std::memory_order_relaxed)) * 1e-9;
  snap.max_seconds =
      static_cast<double>(max_ns_.load(std::memory_order_relaxed)) * 1e-9;
  return snap;
}

double HistogramSnapshot::percentile(double fraction) const {
  return percentiles({fraction}).front();
}

std::vector<double> HistogramSnapshot::percentiles(
    const std::vector<double>& fractions) const {
  std::vector<double> out(fractions.size(), 0.0);
  if (count == 0 || counts.empty()) return out;
  std::size_t f = 0;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts.size() && f < fractions.size(); ++i) {
    seen += counts[i];
    while (f < fractions.size()) {
      const double fraction = std::clamp(fractions[f], 0.0, 1.0);
      std::uint64_t rank = static_cast<std::uint64_t>(
          std::ceil(fraction * static_cast<double>(count)));
      if (rank == 0) rank = 1;  // nearest-rank, like runtime::percentile
      if (seen < rank) break;
      out[f] = static_cast<double>(
                   LatencyHistogram::bucket_max_ns(static_cast<int>(i))) *
               1e-9;
      ++f;
    }
  }
  return out;
}

HistogramSnapshot HistogramSnapshot::diff_since(
    const HistogramSnapshot& base) const {
  HistogramSnapshot out = *this;
  if (!base.counts.empty()) {
    for (std::size_t i = 0; i < out.counts.size() && i < base.counts.size();
         ++i) {
      out.counts[i] -= base.counts[i];
    }
  }
  out.count -= base.count;
  out.sum_seconds -= base.sum_seconds;
  // max is not subtractable; keep the later snapshot's (documented
  // behavior: the max over the whole history, not the interval).
  return out;
}

std::string HistogramSnapshot::summary() const {
  const std::vector<double> p = percentiles({0.50, 0.95, 0.99, 0.999});
  return common::strprintf(
      "n=%llu mean=%s p50=%s p95=%s p99=%s p999=%s max=%s",
      static_cast<unsigned long long>(count),
      common::human_seconds(mean_seconds()).c_str(),
      common::human_seconds(p[0]).c_str(), common::human_seconds(p[1]).c_str(),
      common::human_seconds(p[2]).c_str(), common::human_seconds(p[3]).c_str(),
      common::human_seconds(max_seconds).c_str());
}

MetricsSnapshot MetricsSnapshot::diff_since(const MetricsSnapshot& base) const {
  MetricsSnapshot out = *this;
  for (auto& [name, value] : out.counters) {
    const auto it = base.counters.find(name);
    if (it != base.counters.end()) value -= it->second;
  }
  for (auto& [name, hist] : out.histograms) {
    const auto it = base.histograms.find(name);
    if (it != base.histograms.end()) hist = hist.diff_since(it->second);
  }
  return out;
}

namespace {

void append_json_histogram(std::string& out, const HistogramSnapshot& hist) {
  const std::vector<double> p = hist.percentiles({0.50, 0.95, 0.99, 0.999});
  out += common::strprintf(
      "{\"count\": %llu, \"sum_seconds\": %.9g, \"max_seconds\": %.9g, "
      "\"p50\": %.9g, \"p95\": %.9g, \"p99\": %.9g, \"p999\": %.9g}",
      static_cast<unsigned long long>(hist.count), hist.sum_seconds,
      hist.max_seconds, p[0], p[1], p[2], p[3]);
}

}  // namespace

std::string prometheus_metric_name(const std::string& name) {
  // [a-zA-Z_:][a-zA-Z0-9_:]* — the "vcgra_" prefix supplies the legal
  // first character, everything else is sanitized to '_'.
  std::string out = "vcgra_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

std::string prometheus_label_escape(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out += common::strprintf("%s\n    \"%s\": %llu", first ? "" : ",",
                             name.c_str(),
                             static_cast<unsigned long long>(value));
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    out += common::strprintf("%s\n    \"%s\": %lld", first ? "" : ",",
                             name.c_str(), static_cast<long long>(value));
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, hist] : histograms) {
    out += common::strprintf("%s\n    \"%s\": ", first ? "" : ",", name.c_str());
    append_json_histogram(out, hist);
    first = false;
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

std::string MetricsSnapshot::to_prometheus() const {
  std::string out;
  for (const auto& [name, value] : counters) {
    const std::string prom = prometheus_metric_name(name);
    out += common::strprintf("# TYPE %s counter\n%s %llu\n", prom.c_str(),
                             prom.c_str(),
                             static_cast<unsigned long long>(value));
  }
  for (const auto& [name, value] : gauges) {
    const std::string prom = prometheus_metric_name(name);
    out += common::strprintf("# TYPE %s gauge\n%s %lld\n", prom.c_str(),
                             prom.c_str(), static_cast<long long>(value));
  }
  for (const auto& [name, hist] : histograms) {
    const std::string prom = prometheus_metric_name(name);
    out += common::strprintf("# TYPE %s histogram\n", prom.c_str());
    // Cumulative le-labeled buckets at one edge per power-of-two block
    // (the 16 sub-buckets collapse into their block's upper edge), so
    // the exposition stays ~39 lines per histogram while every count is
    // still attributed below an exact edge. Counts are non-decreasing
    // and the +Inf bucket equals _count, as the format requires.
    std::uint64_t cumulative = 0;
    std::size_t i = 0;
    for (int edge = LatencyHistogram::kSubBuckets - 1;
         edge < LatencyHistogram::kBucketCount;
         edge += LatencyHistogram::kSubBuckets) {
      for (; i < hist.counts.size() && i <= static_cast<std::size_t>(edge);
           ++i) {
        cumulative += hist.counts[i];
      }
      const double le =
          static_cast<double>(LatencyHistogram::bucket_max_ns(edge)) * 1e-9;
      out += common::strprintf(
          "%s_bucket{le=\"%s\"} %llu\n", prom.c_str(),
          prometheus_label_escape(common::strprintf("%.9g", le)).c_str(),
          static_cast<unsigned long long>(cumulative));
    }
    out += common::strprintf("%s_bucket{le=\"+Inf\"} %llu\n", prom.c_str(),
                             static_cast<unsigned long long>(hist.count));
    out += common::strprintf("%s_sum %.9g\n%s_count %llu\n", prom.c_str(),
                             hist.sum_seconds, prom.c_str(),
                             static_cast<unsigned long long>(hist.count));
  }
  return out;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

LatencyHistogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<LatencyHistogram>();
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, counter] : counters_) {
    snap.counters[name] = counter->value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges[name] = gauge->value();
  }
  for (const auto& [name, hist] : histograms_) {
    snap.histograms[name] = hist->snapshot();
  }
  return snap;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

MetricsRegistry& metrics() { return MetricsRegistry::global(); }

}  // namespace vcgra::telemetry
