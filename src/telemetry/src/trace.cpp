#include "vcgra/telemetry/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>

#include "vcgra/common/log.hpp"
#include "vcgra/common/strings.hpp"
#include "vcgra/telemetry/metrics.hpp"

namespace vcgra::telemetry {

namespace {

std::chrono::steady_clock::time_point process_epoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

/// Forces the epoch to initialize at static-init time so the first
/// traced span does not pay the one-time cost.
const bool g_epoch_primed = (process_epoch(), true);

/// One closed span as held in a thread ring.
struct SpanRecord {
  const char* name = nullptr;
  std::uint64_t trace_id = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  std::int32_t depth = 0;
};

/// Fixed-capacity overwrite ring of one thread's closed spans. The
/// owning thread writes lock-free; readers (export/reset) snapshot under
/// the registry mutex — a racing write can tear one in-flight record,
/// which at worst drops or duplicates a single span in an export taken
/// while traffic is still running.
struct SpanRing {
  static constexpr std::size_t kCapacity = Tracer::kRingCapacity;
  std::vector<SpanRecord> records{kCapacity};
  std::atomic<std::uint64_t> next{0};  // monotonic; % kCapacity = slot
  std::atomic<std::uint64_t> dropped{0};  // overwrites since last reset
  int tid = 0;

  void push(const SpanRecord& record) {
    const std::uint64_t slot = next.load(std::memory_order_relaxed);
    if (slot >= kCapacity) {
      // Overwrite: the oldest span is gone. Count it here (per ring,
      // rewound by reset) and in the monotonic registry counter so
      // metrics exports and the health engine see the truncation.
      dropped.fetch_add(1, std::memory_order_relaxed);
      static Counter& drop_counter = metrics().counter("trace.dropped_spans");
      drop_counter.add(1);
    }
    records[slot % kCapacity] = record;
    next.store(slot + 1, std::memory_order_release);
  }
};

struct RingRegistry {
  std::mutex mutex;
  std::vector<std::shared_ptr<SpanRing>> rings;
  int next_tid = 1;
};

RingRegistry& ring_registry() {
  static RingRegistry* registry = new RingRegistry();  // outlives all threads
  return *registry;
}

/// The calling thread's ring, registered (and kept alive process-wide —
/// export works after the thread exits) on first use.
SpanRing& thread_ring() {
  thread_local std::shared_ptr<SpanRing> ring = [] {
    auto fresh = std::make_shared<SpanRing>();
    RingRegistry& registry = ring_registry();
    std::lock_guard<std::mutex> lock(registry.mutex);
    fresh->tid = registry.next_tid++;
    registry.rings.push_back(fresh);
    return fresh;
  }();
  return *ring;
}

std::atomic<std::uint64_t> g_next_trace_id{1};

thread_local std::uint64_t t_trace_id = 0;

}  // namespace

namespace detail {

std::atomic<bool> g_trace_enabled{false};
thread_local JobTrace* t_collector = nullptr;
thread_local int t_depth = 0;
thread_local int t_base_depth = 0;

void span_begin_slow(const char* /*name*/, std::uint64_t* start_ns) {
  ++t_depth;
  *start_ns = trace_now_ns();
}

void span_end_slow(const char* name, std::uint64_t start_ns) {
  const std::uint64_t end_ns = trace_now_ns();
  const int depth = --t_depth;
  const std::uint64_t dur_ns = end_ns - start_ns;
  if (t_collector != nullptr) {
    t_collector->add(name, depth - t_base_depth, start_ns, dur_ns);
  }
  if (g_trace_enabled.load(std::memory_order_relaxed)) {
    SpanRecord record;
    record.name = name;
    record.trace_id = t_trace_id;
    record.start_ns = start_ns;
    record.dur_ns = dur_ns;
    record.depth = depth;
    thread_ring().push(record);
  }
}

}  // namespace detail

std::uint64_t trace_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - process_epoch())
          .count());
}

std::uint64_t child_span_start() {
  if (!detail::g_trace_enabled.load(std::memory_order_relaxed) &&
      detail::t_collector == nullptr) {
    return 0;
  }
  return trace_now_ns();
}

void record_child_span(const char* name, std::uint64_t start_ns) {
  if (start_ns == 0) return;  // tracing was off when the stage started
  const bool enabled = detail::g_trace_enabled.load(std::memory_order_relaxed);
  if (!enabled && detail::t_collector == nullptr) return;
  const std::uint64_t dur_ns = trace_now_ns() - start_ns;
  // t_depth counts *open* guards, so a manual span inside them lands at
  // the same depth a nested SpanGuard would have recorded.
  if (detail::t_collector != nullptr) {
    detail::t_collector->add(name, detail::t_depth - detail::t_base_depth,
                             start_ns, dur_ns);
  }
  if (enabled) {
    SpanRecord record;
    record.name = name;
    record.trace_id = t_trace_id;
    record.start_ns = start_ns;
    record.dur_ns = dur_ns;
    record.depth = detail::t_depth;
    thread_ring().push(record);
  }
}

void JobTrace::add(const char* name, int depth, std::uint64_t start_ns,
                   std::uint64_t dur_ns) {
  if (spans.size() >= kMaxSpans) {
    ++dropped;
    return;
  }
  spans.push_back(Span{name, depth, start_ns, dur_ns});
}

std::vector<StageTiming> JobTrace::stage_breakdown(int depth) const {
  std::vector<StageTiming> stages;
  // Same-depth spans close in chronological order (they cannot nest),
  // so a start-sorted copy keeps the pipeline reading left to right.
  std::vector<const Span*> top;
  for (const Span& span : spans) {
    if (span.depth == depth) top.push_back(&span);
  }
  std::sort(top.begin(), top.end(), [](const Span* a, const Span* b) {
    return a->start_ns < b->start_ns;
  });
  for (const Span* span : top) {
    const double seconds = static_cast<double>(span->dur_ns) * 1e-9;
    auto it = std::find_if(stages.begin(), stages.end(),
                           [&](const StageTiming& stage) {
                             return stage.name == span->name;
                           });
    if (it == stages.end()) {
      stages.push_back(StageTiming{span->name, seconds});
    } else {
      it->seconds += seconds;  // a repeated stage aggregates
    }
  }
  return stages;
}

std::string JobTrace::tree_string() const {
  // Chronological order with depth indent reads as the span tree: a
  // parent starts before (and ends after) its children.
  std::vector<Span> ordered = spans;
  std::sort(ordered.begin(), ordered.end(), [](const Span& a, const Span& b) {
    if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
    return a.dur_ns > b.dur_ns;  // parent before equal-start child
  });
  std::string out;
  for (const Span& span : ordered) {
    out += common::strprintf(
        "%*s%s: %s\n", 2 * std::max(0, span.depth) + 2, "", span.name,
        common::human_seconds(static_cast<double>(span.dur_ns) * 1e-9).c_str());
  }
  if (dropped > 0) {
    out += common::strprintf("  (+%llu spans dropped)\n",
                             static_cast<unsigned long long>(dropped));
  }
  return out;
}

JobTraceScope::JobTraceScope(JobTrace* collector) {
  previous_ = detail::t_collector;
  previous_base_depth_ = detail::t_base_depth;
  detail::t_collector = collector;
  detail::t_base_depth = detail::t_depth;
  if (collector != nullptr) {
    collector->trace_id =
        g_next_trace_id.fetch_add(1, std::memory_order_relaxed);
    t_trace_id = collector->trace_id;
  }
}

JobTraceScope::~JobTraceScope() {
  detail::t_collector = previous_;
  detail::t_base_depth = previous_base_depth_;
  t_trace_id = previous_ != nullptr ? previous_->trace_id : 0;
}

bool Tracer::enabled() {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

void Tracer::set_enabled(bool on) {
  detail::g_trace_enabled.store(on, std::memory_order_relaxed);
}

void Tracer::reset() {
  RingRegistry& registry = ring_registry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  for (const auto& ring : registry.rings) {
    ring->next.store(0, std::memory_order_relaxed);
    ring->dropped.store(0, std::memory_order_relaxed);
  }
}

void Tracer::record_span(const char* name, std::uint64_t start_ns,
                         std::uint64_t dur_ns, std::uint64_t trace_id) {
  if (!enabled()) return;
  SpanRecord record;
  record.name = name;
  record.trace_id = trace_id;
  record.start_ns = start_ns;
  record.dur_ns = dur_ns;
  // Cross-thread spans (queue wait: started on the submitter, finished
  // on the worker) get depth -1: they may overlap the recording thread's
  // own spans, so the trace checker keeps them out of the per-(tid,
  // depth) non-overlap invariant.
  record.depth = -1;
  thread_ring().push(record);
}

std::size_t Tracer::recorded_spans() {
  RingRegistry& registry = ring_registry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  std::size_t total = 0;
  for (const auto& ring : registry.rings) {
    total += static_cast<std::size_t>(std::min<std::uint64_t>(
        ring->next.load(std::memory_order_acquire), SpanRing::kCapacity));
  }
  return total;
}

std::uint64_t Tracer::dropped_spans() {
  RingRegistry& registry = ring_registry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  std::uint64_t total = 0;
  for (const auto& ring : registry.rings) {
    total += ring->dropped.load(std::memory_order_relaxed);
  }
  return total;
}

std::string Tracer::chrome_trace_json() {
  struct TidSpans {
    int tid;
    std::uint64_t dropped = 0;
    std::vector<SpanRecord> records;
  };
  std::vector<TidSpans> threads;
  std::uint64_t total_dropped = 0;
  {
    RingRegistry& registry = ring_registry();
    std::lock_guard<std::mutex> lock(registry.mutex);
    for (const auto& ring : registry.rings) {
      const std::uint64_t written = ring->next.load(std::memory_order_acquire);
      const std::uint64_t held = std::min<std::uint64_t>(written,
                                                         SpanRing::kCapacity);
      if (held == 0) continue;
      TidSpans out;
      out.tid = ring->tid;
      out.dropped = ring->dropped.load(std::memory_order_relaxed);
      total_dropped += out.dropped;
      out.records.reserve(static_cast<std::size_t>(held));
      // Oldest first: slot (written - held) .. (written - 1).
      for (std::uint64_t i = written - held; i < written; ++i) {
        out.records.push_back(ring->records[i % SpanRing::kCapacity]);
      }
      threads.push_back(std::move(out));
    }
  }

  // "droppedSpans" is a vcgra extension; chrome://tracing ignores unknown
  // top-level keys, vcgra_stats --check-trace warns when it is nonzero.
  std::string json = common::strprintf(
      "{\"displayTimeUnit\": \"ms\", \"droppedSpans\": %llu, "
      "\"traceEvents\": [",
      static_cast<unsigned long long>(total_dropped));
  bool first = true;
  for (const TidSpans& thread : threads) {
    json += common::strprintf(
        "%s\n{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
        "\"tid\": %d, \"args\": {\"name\": \"vcgra-%d\"}}",
        first ? "" : ",", thread.tid, thread.tid);
    first = false;
    if (thread.dropped > 0) {
      json += common::strprintf(
          ",\n{\"name\": \"dropped_spans\", \"ph\": \"M\", \"pid\": 1, "
          "\"tid\": %d, \"args\": {\"count\": %llu}}",
          thread.tid, static_cast<unsigned long long>(thread.dropped));
    }
    // chrome://tracing nests same-tid "X" events by containment; sorting
    // by start (ties: longest first) keeps parents before children.
    std::vector<SpanRecord> ordered = thread.records;
    std::sort(ordered.begin(), ordered.end(),
              [](const SpanRecord& a, const SpanRecord& b) {
                if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
                return a.dur_ns > b.dur_ns;
              });
    for (const SpanRecord& record : ordered) {
      json += common::strprintf(
          ",\n{\"name\": \"%s\", \"cat\": \"vcgra\", \"ph\": \"X\", "
          "\"ts\": %.3f, \"dur\": %.3f, \"pid\": 1, \"tid\": %d, "
          "\"args\": {\"trace\": %llu, \"depth\": %d}}",
          record.name != nullptr ? record.name : "?",
          static_cast<double>(record.start_ns) * 1e-3,
          static_cast<double>(record.dur_ns) * 1e-3, thread.tid,
          static_cast<unsigned long long>(record.trace_id), record.depth);
    }
  }
  json += "\n]}\n";
  return json;
}

bool Tracer::export_chrome_trace(const std::string& path) {
  const std::string json = chrome_trace_json();
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    VCGRA_LOG_WARN() << "trace export: cannot open '" << path << "'";
    return false;
  }
  const std::size_t wrote = std::fwrite(json.data(), 1, json.size(), file);
  const bool ok = std::fclose(file) == 0 && wrote == json.size();
  if (!ok) VCGRA_LOG_WARN() << "trace export: short write to '" << path << "'";
  return ok;
}

}  // namespace vcgra::telemetry
