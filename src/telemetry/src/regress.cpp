#include "vcgra/telemetry/regress.hpp"

#include <algorithm>
#include <cmath>

#include "vcgra/common/strings.hpp"
#include "vcgra/common/table.hpp"

namespace vcgra::telemetry {

void flatten_numeric_leaves(const JsonValue& value, const std::string& prefix,
                            std::map<std::string, double>* out) {
  switch (value.kind) {
    case JsonValue::Kind::Number:
      (*out)[prefix] = value.number;
      break;
    case JsonValue::Kind::Object:
      for (const auto& [key, child] : value.object) {
        flatten_numeric_leaves(child,
                               prefix.empty() ? key : prefix + "." + key, out);
      }
      break;
    case JsonValue::Kind::Array:
      for (std::size_t i = 0; i < value.array.size(); ++i) {
        flatten_numeric_leaves(value.array[i],
                               prefix + "." + std::to_string(i), out);
      }
      break;
    default:
      break;  // bool/string/null leaves are not comparable metrics
  }
}

namespace {

bool contains(const std::string& haystack, const char* needle) {
  return haystack.find(needle) != std::string::npos;
}

RegressEntry::Direction infer_direction(const std::string& metric) {
  // Throughput-like first: "jobs_per_second" also matches "_seconds".
  if (contains(metric, "per_second") || contains(metric, "per_sec") ||
      contains(metric, "throughput") || contains(metric, "speedup") ||
      contains(metric, "hit_rate") || contains(metric, "ops_per")) {
    return RegressEntry::Direction::kHigherBetter;
  }
  if (contains(metric, "seconds") || contains(metric, "latency") ||
      contains(metric, "_ns") || contains(metric, "cycles") ||
      contains(metric, "p50") || contains(metric, "p95") ||
      contains(metric, "p99") || contains(metric, "mean") ||
      contains(metric, "max")) {
    return RegressEntry::Direction::kLowerBetter;
  }
  return RegressEntry::Direction::kNeutral;
}

double tolerance_for(const std::string& metric, const RegressOptions& options) {
  // Longest matching substring override wins; built-in tail-width
  // defaults apply underneath user overrides.
  std::size_t best_len = 0;
  double best = -1;
  for (const auto& [pattern, tol] : options.tolerance_overrides) {
    if (contains(metric, pattern.c_str()) && pattern.size() >= best_len) {
      best_len = pattern.size();
      best = tol;
    }
  }
  if (best >= 0) return best;
  if (contains(metric, "p999") || contains(metric, "max")) return 0.50;
  if (contains(metric, "p99")) return 0.30;
  if (contains(metric, "p95")) return 0.20;
  if (contains(metric, "p50") || contains(metric, "mean")) return 0.15;
  return options.default_tolerance;
}

}  // namespace

RegressReport compare_snapshots(const JsonValue& old_doc,
                                const JsonValue& new_doc,
                                const RegressOptions& options) {
  std::map<std::string, double> old_leaves;
  std::map<std::string, double> new_leaves;
  flatten_numeric_leaves(old_doc, "", &old_leaves);
  flatten_numeric_leaves(new_doc, "", &new_leaves);

  RegressReport report;
  for (const auto& [metric, new_value] : new_leaves) {
    RegressEntry entry;
    entry.metric = metric;
    entry.new_value = new_value;
    entry.direction = infer_direction(metric);
    entry.tolerance = tolerance_for(metric, options);

    const auto it = old_leaves.find(metric);
    if (it == old_leaves.end()) {
      entry.status = RegressEntry::Status::kInfo;  // new leaf: no baseline
      ++report.infos;
      report.entries.push_back(std::move(entry));
      continue;
    }
    entry.old_value = it->second;

    const double base = std::abs(entry.old_value);
    entry.change = base > 0 ? (entry.new_value - entry.old_value) / base
                            : (entry.new_value != 0 ? 1.0 : 0.0);

    if (entry.direction == RegressEntry::Direction::kNeutral) {
      entry.status = RegressEntry::Status::kInfo;
      ++report.infos;
    } else {
      // Regression magnitude: how far the change moved in the *bad*
      // direction (improvements are negative and always pass).
      const double regression =
          entry.direction == RegressEntry::Direction::kLowerBetter
              ? entry.change
              : -entry.change;
      const bool above_floor =
          std::abs(entry.new_value - entry.old_value) >= options.absolute_floor;
      if (regression >= 2 * entry.tolerance && above_floor) {
        entry.status = RegressEntry::Status::kFail;
        ++report.fails;
      } else if (regression >= entry.tolerance && above_floor) {
        entry.status = RegressEntry::Status::kWarn;
        ++report.warns;
      } else {
        entry.status = RegressEntry::Status::kPass;
        ++report.passes;
      }
    }
    report.entries.push_back(std::move(entry));
  }
  // Leaves that disappeared are informational too (a retired bench, a
  // renamed metric) — surfaced so a silently-vanishing metric is visible.
  for (const auto& [metric, old_value] : old_leaves) {
    if (new_leaves.count(metric)) continue;
    RegressEntry entry;
    entry.metric = metric + " (removed)";
    entry.old_value = old_value;
    entry.status = RegressEntry::Status::kInfo;
    ++report.infos;
    report.entries.push_back(std::move(entry));
  }
  return report;
}

namespace {

const char* status_name(RegressEntry::Status status) {
  switch (status) {
    case RegressEntry::Status::kPass:
      return "pass";
    case RegressEntry::Status::kWarn:
      return "warn";
    case RegressEntry::Status::kFail:
      return "FAIL";
    case RegressEntry::Status::kInfo:
      return "info";
  }
  return "info";
}

}  // namespace

std::string RegressReport::summary() const {
  return common::strprintf(
      "regression: %d fail, %d warn, %d pass (%d informational)", fails, warns,
      passes, infos);
}

std::string RegressReport::table(bool include_all) const {
  common::AsciiTable table({"metric", "old", "new", "change", "tol", "status"});
  // Fails first, then warns, then the rest, each group in path order.
  const auto rank = [](RegressEntry::Status s) {
    switch (s) {
      case RegressEntry::Status::kFail:
        return 0;
      case RegressEntry::Status::kWarn:
        return 1;
      case RegressEntry::Status::kPass:
        return 2;
      case RegressEntry::Status::kInfo:
        return 3;
    }
    return 3;
  };
  std::vector<const RegressEntry*> ordered;
  ordered.reserve(entries.size());
  for (const RegressEntry& entry : entries) ordered.push_back(&entry);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [&](const RegressEntry* a, const RegressEntry* b) {
                     return rank(a->status) < rank(b->status);
                   });
  std::size_t rows = 0;
  for (const RegressEntry* entry : ordered) {
    if (!include_all && entry->status != RegressEntry::Status::kFail &&
        entry->status != RegressEntry::Status::kWarn) {
      continue;
    }
    table.add_row({entry->metric, common::strprintf("%.6g", entry->old_value),
                   common::strprintf("%.6g", entry->new_value),
                   common::strprintf("%+.1f%%", entry->change * 100.0),
                   common::strprintf("%.0f%%", entry->tolerance * 100.0),
                   status_name(entry->status)});
    ++rows;
  }
  return rows == 0 ? std::string() : table.render();
}

std::string RegressReport::to_json() const {
  std::string out = common::strprintf(
      "{\n  \"fails\": %d,\n  \"warns\": %d,\n  \"passes\": %d,\n"
      "  \"infos\": %d,\n  \"entries\": [",
      fails, warns, passes, infos);
  bool first = true;
  for (const RegressEntry& entry : entries) {
    out += common::strprintf(
        "%s\n    {\"metric\": \"%s\", \"old\": %.9g, \"new\": %.9g, "
        "\"change\": %.6g, \"tolerance\": %.6g, \"status\": \"%s\"}",
        first ? "" : ",", entry.metric.c_str(), entry.old_value,
        entry.new_value, entry.change, entry.tolerance,
        status_name(entry.status));
    first = false;
  }
  out += first ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

}  // namespace vcgra::telemetry
