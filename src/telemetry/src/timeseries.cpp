#include "vcgra/telemetry/timeseries.hpp"

#include <algorithm>
#include <cmath>

#include "vcgra/common/strings.hpp"

namespace vcgra::telemetry {

TimeSeriesStore::TimeSeriesStore(TimeSeriesOptions options)
    : options_(options) {
  if (options_.capacity == 0) options_.capacity = 1;
  options_.ewma_alpha = std::clamp(options_.ewma_alpha, 1e-6, 1.0);
}

void TimeSeriesStore::push_value(const std::string& name, std::uint64_t end_ns,
                                 double interval_seconds, double value) {
  Series& series = series_[name];
  SeriesPoint point;
  point.end_ns = end_ns;
  point.interval_seconds = interval_seconds;
  point.value = value;

  if (series.seen >= options_.warmup_windows) {
    // Sigma floor: absolute epsilon plus a fraction of the running mean,
    // so a flat-lined series (variance ~0) never flags on jitter.
    const double floor = 1e-9 + options_.sigma_relative_floor *
                                    std::abs(series.ewma_mean);
    const double sigma =
        std::sqrt(std::max(series.ewma_var, 0.0) + floor * floor);
    point.zscore = (value - series.ewma_mean) / sigma;
    point.anomaly = std::abs(point.zscore) >= options_.z_threshold;
  }

  // EWMA mean/variance update (West-style): the baseline absorbs the new
  // point *after* scoring it, so a genuine step change flags once and
  // then becomes the new normal.
  const double d = value - series.ewma_mean;
  series.ewma_mean += options_.ewma_alpha * d;
  series.ewma_var =
      (1.0 - options_.ewma_alpha) * (series.ewma_var +
                                     options_.ewma_alpha * d * d);
  ++series.seen;

  if (series.ring.size() < options_.capacity) {
    series.ring.push_back(point);
  } else {
    series.ring[series.head] = point;
    series.head = (series.head + 1) % options_.capacity;
  }
}

void TimeSeriesStore::push_window(std::uint64_t end_ns,
                                  double interval_seconds,
                                  const MetricsSnapshot& delta,
                                  const MetricsSnapshot& level) {
  const double dt = interval_seconds > 0 ? interval_seconds : 1e-9;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, value] : delta.counters) {
    push_value(name + ".rate", end_ns, interval_seconds,
               static_cast<double>(value) / dt);
  }
  for (const auto& [name, value] : level.gauges) {
    push_value(name, end_ns, interval_seconds, static_cast<double>(value));
  }
  for (const auto& [name, hist] : delta.histograms) {
    push_value(name + ".rate", end_ns, interval_seconds,
               static_cast<double>(hist.count) / dt);
    if (hist.count > 0) {
      const std::vector<double> p = hist.percentiles({0.50, 0.99});
      push_value(name + ".p50", end_ns, interval_seconds, p[0]);
      push_value(name + ".p99", end_ns, interval_seconds, p[1]);
    }
  }
  ++windows_;
}

std::uint64_t TimeSeriesStore::windows() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return windows_;
}

namespace {

// Materializes the ring into chronological order, trimmed to last_n.
std::vector<SeriesPoint> ordered_points(const std::vector<SeriesPoint>& ring,
                                        std::size_t head, std::size_t capacity,
                                        std::size_t last_n) {
  std::vector<SeriesPoint> out;
  out.reserve(ring.size());
  if (ring.size() < capacity) {
    out = ring;  // not yet wrapped: already chronological
  } else {
    for (std::size_t i = 0; i < ring.size(); ++i) {
      out.push_back(ring[(head + i) % ring.size()]);
    }
  }
  if (last_n > 0 && out.size() > last_n) {
    out.erase(out.begin(),
              out.begin() + static_cast<std::ptrdiff_t>(out.size() - last_n));
  }
  return out;
}

}  // namespace

std::vector<SeriesData> TimeSeriesStore::series(std::size_t last_n) const {
  std::vector<SeriesData> out;
  std::lock_guard<std::mutex> lock(mutex_);
  out.reserve(series_.size());
  for (const auto& [name, series] : series_) {
    SeriesData data;
    data.name = name;
    data.points =
        ordered_points(series.ring, series.head, options_.capacity, last_n);
    out.push_back(std::move(data));
  }
  return out;
}

bool TimeSeriesStore::latest(const std::string& name, SeriesPoint* out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = series_.find(name);
  if (it == series_.end() || it->second.ring.empty()) return false;
  const Series& series = it->second;
  const std::size_t last = series.ring.size() < options_.capacity
                               ? series.ring.size() - 1
                               : (series.head + options_.capacity - 1) %
                                     options_.capacity;
  if (out != nullptr) *out = series.ring[last];
  return true;
}

std::vector<std::string> TimeSeriesStore::last_anomalies() const {
  std::vector<std::string> out;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, series] : series_) {
    if (series.ring.empty()) continue;
    const std::size_t last = series.ring.size() < options_.capacity
                                 ? series.ring.size() - 1
                                 : (series.head + options_.capacity - 1) %
                                       options_.capacity;
    if (series.ring[last].anomaly) out.push_back(name);
  }
  return out;
}

std::string TimeSeriesStore::to_json(std::size_t last_n) const {
  const std::vector<SeriesData> all = series(last_n);
  std::string out = common::strprintf("{\n  \"windows\": %llu,\n  \"series\": [",
                                      static_cast<unsigned long long>(windows()));
  bool first_series = true;
  for (const SeriesData& data : all) {
    out += common::strprintf("%s\n    {\"name\": \"%s\", \"points\": [",
                             first_series ? "" : ",", data.name.c_str());
    first_series = false;
    bool first_point = true;
    for (const SeriesPoint& p : data.points) {
      out += common::strprintf(
          "%s\n      {\"t_ns\": %llu, \"dt\": %.9g, \"v\": %.9g, "
          "\"z\": %.4g, \"anomaly\": %s}",
          first_point ? "" : ",", static_cast<unsigned long long>(p.end_ns),
          p.interval_seconds, p.value, p.zscore,
          p.anomaly ? "true" : "false");
      first_point = false;
    }
    out += first_point ? "]}" : "\n    ]}";
  }
  out += first_series ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

}  // namespace vcgra::telemetry
