#include "vcgra/telemetry/top.hpp"

#include <algorithm>
#include <cmath>

#include "vcgra/common/strings.hpp"

namespace vcgra::telemetry {

namespace {

double num(const JsonValue* value, double fallback = 0) {
  return value != nullptr && value->is_number() ? value->number : fallback;
}

std::string str(const JsonValue* value, const std::string& fallback = "") {
  return value != nullptr && value->is_string() ? value->string : fallback;
}

const char* kColorReset = "\x1b[0m";

const char* status_color(const std::string& status) {
  if (status == "ok") return "\x1b[32m";        // green
  if (status == "degraded") return "\x1b[33m";  // yellow
  return "\x1b[31m";                            // red
}

std::string paint(const std::string& status, bool color) {
  if (!color) return status;
  return status_color(status) + status + kColorReset;
}

}  // namespace

std::string sparkline(const std::vector<double>& values, std::size_t width) {
  static const char kLevels[] = " .:-=+*#%@";
  constexpr int kMax = 9;  // strlen(kLevels) - 1
  if (values.empty() || width == 0) return "";
  const std::size_t n = std::min(values.size(), width);
  const auto begin = values.end() - static_cast<std::ptrdiff_t>(n);
  double lo = *std::min_element(begin, values.end());
  double hi = *std::max_element(begin, values.end());
  std::string out;
  out.reserve(n);
  for (auto it = begin; it != values.end(); ++it) {
    int level = kMax;
    if (hi > lo) {
      level = static_cast<int>(std::lround((*it - lo) / (hi - lo) * kMax));
    } else {
      level = *it != 0 ? kMax / 2 + 1 : 0;
    }
    out += kLevels[std::clamp(level, 0, kMax)];
  }
  return out;
}

std::string render_top_frame(const JsonValue& doc, const TopOptions& options) {
  std::string out;
  const JsonValue* service = doc.find("service");
  const JsonValue* process = doc.find("process");
  // Health/series either live under "monitor" (stats file) or at the
  // top level (the Monitor's own live export).
  const JsonValue* monitor = doc.find("monitor");
  const JsonValue* health =
      monitor != nullptr ? monitor->find("health") : doc.find("health");
  const JsonValue* series_doc =
      monitor != nullptr ? monitor->find("series") : doc.find("series");

  // ---- header: overall verdict ------------------------------------
  std::string overall = "unmonitored";
  if (health != nullptr) overall = str(health->find("overall"), "unknown");
  out += common::strprintf("vcgra_top | overall: %s",
                           paint(overall, options.color).c_str());
  if (health != nullptr) {
    out += common::strprintf(
        " | windows %llu",
        static_cast<unsigned long long>(num(health->find("windows_evaluated"))));
  }
  out += "\n";

  // ---- service: throughput + latency ------------------------------
  if (service != nullptr) {
    out += common::strprintf(
        "jobs     %llu done, %llu failed | %.1f jobs/s | fused %llu batches "
        "(%llu jobs) | sessions open %llu\n",
        static_cast<unsigned long long>(num(service->find("jobs_completed"))),
        static_cast<unsigned long long>(num(service->find("jobs_failed"))),
        num(service->find("jobs_per_second")),
        static_cast<unsigned long long>(num(service->find("fused_batches"))),
        static_cast<unsigned long long>(num(service->find("batched_jobs"))),
        static_cast<unsigned long long>(num(service->find("sessions_open"))));
    out += common::strprintf(
        "latency  p50 %s | p95 %s | p99 %s | p999 %s | max %s\n",
        common::human_seconds(num(service->find("p50_latency_seconds"))).c_str(),
        common::human_seconds(num(service->find("p95_latency_seconds"))).c_str(),
        common::human_seconds(num(service->find("p99_latency_seconds"))).c_str(),
        common::human_seconds(num(service->find("p999_latency_seconds"))).c_str(),
        common::human_seconds(num(service->find("max_latency_seconds"))).c_str());
    out += common::strprintf(
        "queue    p50 %s | p99 %s\n",
        common::human_seconds(num(service->find("p50_queue_seconds"))).c_str(),
        common::human_seconds(num(service->find("p99_queue_seconds"))).c_str());
    const JsonValue* cache = service->find("cache");
    if (cache != nullptr) {
      out += common::strprintf(
          "cache    hit-rate %.1f%% (structure %.1f%%) | hits %llu | misses "
          "%llu | disk hits %llu | plans %llu built / %llu hits\n",
          num(cache->find("hit_rate")) * 100.0,
          num(cache->find("structure_hit_rate")) * 100.0,
          static_cast<unsigned long long>(num(cache->find("hits"))),
          static_cast<unsigned long long>(num(cache->find("misses"))),
          static_cast<unsigned long long>(num(cache->find("disk_hits"))),
          static_cast<unsigned long long>(num(cache->find("plans_built"))),
          static_cast<unsigned long long>(num(cache->find("plan_hits"))));
    }
    const JsonValue* sched = service->find("scheduler");
    if (sched != nullptr) {
      out += common::strprintf(
          "sched    %llu assignments | %llu reconfigs | %llu param-only | "
          "%llu avoided\n",
          static_cast<unsigned long long>(num(sched->find("assignments"))),
          static_cast<unsigned long long>(num(sched->find("reconfigurations"))),
          static_cast<unsigned long long>(
              num(sched->find("param_respecializations"))),
          static_cast<unsigned long long>(
              num(sched->find("reconfigurations_avoided"))));
    }
  }

  // ---- process gauges ---------------------------------------------
  if (process != nullptr) {
    const JsonValue* gauges = process->find("gauges");
    if (gauges != nullptr && gauges->is_object() && !gauges->object.empty()) {
      out += "gauges  ";
      for (const auto& [name, value] : gauges->object) {
        out += common::strprintf(" %s=%lld", name.c_str(),
                                 static_cast<long long>(num(&value)));
      }
      out += "\n";
    }
    const JsonValue* counters = process->find("counters");
    if (counters != nullptr) {
      const JsonValue* drops = counters->find("trace.dropped_spans");
      if (drops != nullptr && drops->number > 0) {
        out += common::strprintf(
            "trace    %llu spans dropped by ring overwrite\n",
            static_cast<unsigned long long>(drops->number));
      }
    }
  }

  // ---- health verdicts --------------------------------------------
  if (health != nullptr) {
    const JsonValue* rules = health->find("rules");
    if (rules != nullptr && rules->is_object()) {
      out += "health  ";
      for (const auto& [name, verdict] : rules->object) {
        const std::string status = str(verdict.find("status"), "?");
        out += common::strprintf(" %s=%s", name.c_str(),
                                 paint(status, options.color).c_str());
        if (status != "ok") {
          out += common::strprintf("(%.4g)", num(verdict.find("value")));
        }
      }
      out += "\n";
    }
    const JsonValue* anomalies = health->find("anomalies");
    if (anomalies != nullptr && anomalies->is_array() &&
        !anomalies->array.empty()) {
      out += "anomaly ";
      for (const JsonValue& name : anomalies->array) {
        out += " " + name.string;
      }
      out += "\n";
    }
  }

  // ---- series sparklines ------------------------------------------
  if (series_doc != nullptr && options.spark_width > 0) {
    const JsonValue* series = series_doc->find("series");
    if (series != nullptr && series->is_array()) {
      for (const JsonValue& entry : series->array) {
        const std::string name = str(entry.find("name"));
        const JsonValue* points = entry.find("points");
        if (name.empty() || points == nullptr || !points->is_array() ||
            points->array.empty()) {
          continue;
        }
        std::vector<double> values;
        values.reserve(points->array.size());
        for (const JsonValue& point : points->array) {
          values.push_back(num(point.find("v")));
        }
        out += common::strprintf(
            "%-28s [%s] %.6g\n", name.c_str(),
            sparkline(values, options.spark_width).c_str(), values.back());
      }
    }
  }
  return out;
}

}  // namespace vcgra::telemetry
