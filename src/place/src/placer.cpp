#include "vcgra/place/placer.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

#include "vcgra/common/log.hpp"
#include "vcgra/common/rng.hpp"
#include "vcgra/common/strings.hpp"

namespace vcgra::place {

using netlist::CellId;
using netlist::CellKind;
using netlist::NetId;

std::size_t PlacementProblem::num_logic_blocks() const {
  std::size_t count = 0;
  for (const auto& block : blocks) {
    if (block.kind == BlockKind::kLogic) ++count;
  }
  return count;
}

std::size_t PlacementProblem::num_pads() const {
  return blocks.size() - num_logic_blocks();
}

PlacementProblem PlacementProblem::from_netlist(const netlist::Netlist& nl) {
  PlacementProblem problem;
  std::unordered_map<NetId, BlockId> driver_block;  // net -> driving block
  std::unordered_map<CellId, BlockId> cell_block;

  const auto is_const_cell = [&](CellId c) {
    const CellKind kind = nl.cell(c).kind;
    return kind == CellKind::kConst0 || kind == CellKind::kConst1;
  };

  // Logic blocks.
  for (CellId c = 0; c < nl.num_cells(); ++c) {
    if (is_const_cell(c)) continue;
    const auto& cell = nl.cell(c);
    if (cell.kind != CellKind::kLut && cell.kind != CellKind::kDff) {
      throw std::invalid_argument(
          "PlacementProblem: netlist must contain only LUT/DFF/const cells");
    }
    const BlockId id = static_cast<BlockId>(problem.blocks.size());
    problem.blocks.push_back(
        Block{BlockKind::kLogic, nl.net(cell.out).name, c, cell.out});
    cell_block[c] = id;
    driver_block[cell.out] = id;
  }

  // Input pads for used primary inputs and parameter nets with fanout.
  const auto fanouts = nl.fanouts();
  const auto add_input_pad = [&](NetId net) {
    if (fanouts[net].empty()) return;
    const BlockId id = static_cast<BlockId>(problem.blocks.size());
    problem.blocks.push_back(
        Block{BlockKind::kInputPad, nl.net(net).name, netlist::kNoCell, net});
    driver_block[net] = id;
  };
  for (const NetId in : nl.inputs()) add_input_pad(in);
  for (const NetId p : nl.params()) add_input_pad(p);

  // Output pads.
  std::vector<BlockId> output_pads;
  for (const NetId po : nl.outputs()) {
    const BlockId id = static_cast<BlockId>(problem.blocks.size());
    problem.blocks.push_back(
        Block{BlockKind::kOutputPad, nl.net(po).name + "_po", netlist::kNoCell, po});
    output_pads.push_back(id);
  }

  // Nets.
  std::unordered_map<NetId, std::size_t> net_index;
  const auto net_for = [&](NetId net) -> PlacementNet* {
    const auto drv = driver_block.find(net);
    if (drv == driver_block.end()) return nullptr;  // const or dangling
    const auto it = net_index.find(net);
    if (it != net_index.end()) return &problem.nets[it->second];
    net_index[net] = problem.nets.size();
    PlacementNet pnet;
    pnet.net = net;
    pnet.pins.push_back(drv->second);
    problem.nets.push_back(std::move(pnet));
    return &problem.nets.back();
  };

  for (CellId c = 0; c < nl.num_cells(); ++c) {
    if (is_const_cell(c)) continue;
    const auto& cell = nl.cell(c);
    for (std::size_t pin = 0; pin < cell.ins.size(); ++pin) {
      PlacementNet* pnet = net_for(cell.ins[pin]);
      if (!pnet) continue;
      pnet->pins.push_back(cell_block.at(c));
      pnet->sink_pins.push_back(static_cast<int>(pin));
    }
  }
  for (std::size_t i = 0; i < nl.outputs().size(); ++i) {
    PlacementNet* pnet = net_for(nl.outputs()[i]);
    if (!pnet) continue;
    pnet->pins.push_back(output_pads[i]);
    pnet->sink_pins.push_back(0);
  }

  // Drop single-pin nets (no sinks).
  std::vector<PlacementNet> kept;
  kept.reserve(problem.nets.size());
  for (auto& pnet : problem.nets) {
    if (pnet.pins.size() >= 2) kept.push_back(std::move(pnet));
  }
  problem.nets = std::move(kept);
  return problem;
}

namespace {

/// VPR's q-correction for the bounding-box wirelength of high-fanout nets.
double q_factor(std::size_t pins) {
  static constexpr double kTable[] = {
      1.0,    1.0,    1.0,    1.0828, 1.1536, 1.2206, 1.2823, 1.3385,
      1.3991, 1.4493, 1.4974, 1.5455, 1.5937, 1.6418, 1.6899, 1.7304,
      1.7709, 1.8114, 1.8519, 1.8924, 1.9288, 1.9652, 2.0015, 2.0379,
      2.0743, 2.1061, 2.1379, 2.1698, 2.2016, 2.2334, 2.2646, 2.2958,
      2.3271, 2.3583, 2.3895, 2.4187, 2.4479, 2.4772, 2.5064, 2.5356,
      2.5610, 2.5864, 2.6117, 2.6371, 2.6625, 2.6887, 2.7148, 2.7410,
      2.7671, 2.7933};
  if (pins < std::size(kTable)) return kTable[pins];
  return 2.7933 + 0.02616 * (static_cast<double>(pins) - 49.0);
}

struct Slot {
  int x = 0;
  int y = 0;
  int slot = 0;
};

struct Annealer {
  const PlacementProblem& problem;
  const fpga::ArchParams& arch;
  common::Rng rng;

  std::vector<Placement::Loc> loc;              // per block
  std::vector<std::vector<std::size_t>> nets_of;  // block -> net indices
  std::vector<double> net_cost;
  std::unordered_map<std::uint64_t, BlockId> occupancy;  // slot key -> block
  std::vector<Slot> logic_slots;
  std::vector<Slot> io_slots;

  static std::uint64_t slot_key(int x, int y, int slot) {
    return (static_cast<std::uint64_t>(x) << 32) |
           (static_cast<std::uint64_t>(y) << 8) | static_cast<std::uint64_t>(slot);
  }

  double net_hpwl(const PlacementNet& pnet) const {
    int min_x = 1 << 30, max_x = -(1 << 30);
    int min_y = 1 << 30, max_y = -(1 << 30);
    for (const BlockId b : pnet.pins) {
      min_x = std::min(min_x, loc[b].x);
      max_x = std::max(max_x, loc[b].x);
      min_y = std::min(min_y, loc[b].y);
      max_y = std::max(max_y, loc[b].y);
    }
    return q_factor(pnet.pins.size()) *
           static_cast<double>((max_x - min_x) + (max_y - min_y));
  }

  double total_cost() const {
    double cost = 0;
    for (const double c : net_cost) cost += c;
    return cost;
  }

  void init() {
    for (int y = 1; y <= arch.height; ++y) {
      for (int x = 1; x <= arch.width; ++x) logic_slots.push_back({x, y, 0});
    }
    for (int y = 0; y <= arch.height + 1; ++y) {
      for (int x = 0; x <= arch.width + 1; ++x) {
        if (tile_at(arch, x, y) != fpga::TileKind::kIo) continue;
        for (int s = 0; s < arch.io_per_tile; ++s) io_slots.push_back({x, y, s});
      }
    }
    std::size_t logic_needed = problem.num_logic_blocks();
    if (logic_needed > logic_slots.size() || problem.num_pads() > io_slots.size()) {
      throw std::invalid_argument(common::strprintf(
          "place: device too small (%zu logic in %zu slots, %zu pads in %zu)",
          logic_needed, logic_slots.size(), problem.num_pads(), io_slots.size()));
    }

    // Random initial placement: shuffle slot lists.
    for (std::size_t i = logic_slots.size(); i > 1; --i) {
      std::swap(logic_slots[i - 1], logic_slots[rng.next_below(i)]);
    }
    for (std::size_t i = io_slots.size(); i > 1; --i) {
      std::swap(io_slots[i - 1], io_slots[rng.next_below(i)]);
    }
    loc.resize(problem.blocks.size());
    std::size_t next_logic = 0, next_io = 0;
    for (BlockId b = 0; b < problem.blocks.size(); ++b) {
      const Slot s = problem.blocks[b].kind == BlockKind::kLogic
                         ? logic_slots[next_logic++]
                         : io_slots[next_io++];
      loc[b] = {s.x, s.y, s.slot};
      occupancy[slot_key(s.x, s.y, s.slot)] = b;
    }

    nets_of.resize(problem.blocks.size());
    net_cost.resize(problem.nets.size());
    for (std::size_t n = 0; n < problem.nets.size(); ++n) {
      net_cost[n] = net_hpwl(problem.nets[n]);
      for (const BlockId b : problem.nets[n].pins) nets_of[b].push_back(n);
    }
    for (auto& list : nets_of) {
      std::sort(list.begin(), list.end());
      list.erase(std::unique(list.begin(), list.end()), list.end());
    }
  }

  /// Delta cost of moving/swapping; applies the move, returns delta.
  /// Caller reverts by calling again with the same arguments.
  double apply_move(BlockId a, int nx, int ny, int nslot, BlockId displaced) {
    const auto move_block = [&](BlockId b, int x, int y, int s) {
      occupancy.erase(slot_key(loc[b].x, loc[b].y, loc[b].slot));
      loc[b] = {x, y, s};
      occupancy[slot_key(x, y, s)] = b;
    };
    const Placement::Loc old_a = loc[a];
    double delta = 0;
    std::vector<std::size_t> touched = nets_of[a];
    if (displaced != kNoBlock) {
      touched.insert(touched.end(), nets_of[displaced].begin(),
                     nets_of[displaced].end());
      std::sort(touched.begin(), touched.end());
      touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
    }
    // Move.
    occupancy.erase(slot_key(old_a.x, old_a.y, old_a.slot));
    if (displaced != kNoBlock) move_block(displaced, old_a.x, old_a.y, old_a.slot);
    loc[a] = {nx, ny, nslot};
    occupancy[slot_key(nx, ny, nslot)] = a;

    for (const std::size_t n : touched) {
      const double fresh = net_hpwl(problem.nets[n]);
      delta += fresh - net_cost[n];
      net_cost[n] = fresh;
    }
    return delta;
  }

  Placement run(double effort) {
    init();
    if (problem.blocks.empty()) return finish();

    double cost = total_cost();
    const std::size_t moves_per_t = std::max<std::size_t>(
        64, static_cast<std::size_t>(
                effort * 8.0 *
                std::pow(static_cast<double>(problem.blocks.size()), 4.0 / 3.0)));
    double rlim = static_cast<double>(std::max(arch.width, arch.height));

    // Initial temperature: 20x the std-dev of random-move deltas.
    {
      double sum = 0, sum_sq = 0;
      const int probes = 64;
      for (int i = 0; i < probes; ++i) {
        const double delta = random_move(rlim, 1e30, &cost);
        sum += delta;
        sum_sq += delta * delta;
      }
      const double variance = std::max(0.0, sum_sq / probes - (sum / probes) * (sum / probes));
      temperature_ = 20.0 * std::sqrt(variance) + 1e-6;
    }

    while (true) {
      std::size_t accepted = 0;
      for (std::size_t m = 0; m < moves_per_t; ++m) {
        if (random_move(rlim, temperature_, &cost) != kRejected) ++accepted;
      }
      const double rate =
          static_cast<double>(accepted) / static_cast<double>(moves_per_t);
      // VPR schedule.
      double alpha = 0.8;
      if (rate > 0.96) {
        alpha = 0.5;
      } else if (rate > 0.8) {
        alpha = 0.9;
      } else if (rate > 0.15) {
        alpha = 0.95;
      }
      temperature_ *= alpha;
      rlim = std::clamp(rlim * (1.0 - 0.44 + rate), 1.0,
                        static_cast<double>(std::max(arch.width, arch.height)));
      const double exit_t =
          0.005 * cost / std::max<std::size_t>(1, problem.nets.size());
      if (temperature_ < exit_t || cost < 1e-9) break;
    }
    return finish();
  }

  static constexpr double kRejected = 1e31;

  /// One Metropolis move; returns delta if accepted, kRejected otherwise.
  double random_move(double rlim, double temperature, double* cost) {
    if (problem.blocks.empty()) return kRejected;
    const BlockId a = static_cast<BlockId>(rng.next_below(problem.blocks.size()));
    const bool is_logic = problem.blocks[a].kind == BlockKind::kLogic;
    Slot target;
    if (is_logic) {
      const int r = std::max(1, static_cast<int>(rlim));
      target.x = std::clamp(loc[a].x + static_cast<int>(rng.next_in(-r, r)), 1,
                            arch.width);
      target.y = std::clamp(loc[a].y + static_cast<int>(rng.next_in(-r, r)), 1,
                            arch.height);
      target.slot = 0;
    } else {
      target = io_slots[rng.next_below(io_slots.size())];
    }
    if (target.x == loc[a].x && target.y == loc[a].y && target.slot == loc[a].slot) {
      return kRejected;
    }
    BlockId displaced = kNoBlock;
    const auto occ = occupancy.find(slot_key(target.x, target.y, target.slot));
    if (occ != occupancy.end()) {
      displaced = occ->second;
      // Pads and logic blocks live in disjoint slot pools, so kinds match.
      if (problem.blocks[displaced].kind != problem.blocks[a].kind) return kRejected;
    }
    const Placement::Loc old_a = loc[a];
    const double delta = apply_move(a, target.x, target.y, target.slot, displaced);
    if (delta <= 0 || rng.next_double() < std::exp(-delta / temperature)) {
      *cost += delta;
      return delta;
    }
    // Revert: `a` returns to its old slot; `displaced` (currently there)
    // moves back to the target slot via the same swap primitive.
    apply_move(a, old_a.x, old_a.y, old_a.slot, displaced);
    return kRejected;
  }

  Placement finish() {
    Placement placement;
    placement.locations = loc;
    return placement;
  }

  double temperature_ = 1.0;
};

}  // namespace

double Placement::hpwl(const PlacementProblem& problem) const {
  double total = 0;
  for (const auto& pnet : problem.nets) {
    int min_x = 1 << 30, max_x = -(1 << 30);
    int min_y = 1 << 30, max_y = -(1 << 30);
    for (const BlockId b : pnet.pins) {
      min_x = std::min(min_x, locations[b].x);
      max_x = std::max(max_x, locations[b].x);
      min_y = std::min(min_y, locations[b].y);
      max_y = std::max(max_y, locations[b].y);
    }
    total += q_factor(pnet.pins.size()) *
             static_cast<double>((max_x - min_x) + (max_y - min_y));
  }
  return total;
}

Placement place(const PlacementProblem& problem, const fpga::ArchParams& arch,
                const PlaceOptions& options) {
  Annealer annealer{problem, arch, common::Rng(options.seed), {}, {}, {}, {}, {}, {}};
  return annealer.run(options.effort);
}

}  // namespace vcgra::place
