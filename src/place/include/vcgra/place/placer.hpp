// TPLACE: simulated-annealing placement (VPR-style adaptive schedule).
//
// Places the blocks of a mapped LUT netlist onto the island FPGA's logic
// grid and IO ring, minimizing the classic bounding-box wirelength
// estimate (HPWL scaled by the VPR q-factor for high-fanout nets).  This
// is the placement half of the TPaR tool suite the paper uses [11]; the
// same placer serves both the conventional and the fully parameterized
// flows so the Table I wirelength comparison is apples-to-apples.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "vcgra/fpga/arch.hpp"
#include "vcgra/netlist/netlist.hpp"

namespace vcgra::place {

using BlockId = std::uint32_t;
inline constexpr BlockId kNoBlock = ~BlockId{0};

enum class BlockKind : std::uint8_t { kLogic, kInputPad, kOutputPad };

struct Block {
  BlockKind kind = BlockKind::kLogic;
  std::string name;
  // Back-references into the source netlist.
  netlist::CellId cell = netlist::kNoCell;  // for logic blocks
  netlist::NetId net = netlist::kNullNet;   // for pads: the PI/PO net
};

/// Multi-terminal net: pins[0] is the driver block, the rest are sinks.
/// `sink_pins[i]` is the input-pin index at the sink block (LUT pin), used
/// later by the router to pick the physical IPIN.
struct PlacementNet {
  netlist::NetId net = netlist::kNullNet;
  std::vector<BlockId> pins;
  std::vector<int> sink_pins;
};

struct PlacementProblem {
  std::vector<Block> blocks;
  std::vector<PlacementNet> nets;

  std::size_t num_logic_blocks() const;
  std::size_t num_pads() const;

  /// Build from a LUT/DFF netlist (constants folded away; see
  /// netlist::clean). Each LUT or DFF cell becomes a logic block; each
  /// used primary input and every primary output becomes a pad.
  static PlacementProblem from_netlist(const netlist::Netlist& netlist);
};

struct Placement {
  // Per block: tile coordinate and sub-slot (pads share IO tiles).
  struct Loc {
    int x = 0;
    int y = 0;
    int slot = 0;
  };
  std::vector<Loc> locations;

  double hpwl(const PlacementProblem& problem) const;
};

struct PlaceOptions {
  std::uint64_t seed = 1;
  double effort = 1.0;  // scales moves per temperature
};

/// Simulated-annealing placement. Throws if the device is too small.
Placement place(const PlacementProblem& problem, const fpga::ArchParams& arch,
                const PlaceOptions& options = {});

}  // namespace vcgra::place
