// vcgra_overlayc — ahead-of-time overlay compiler.
//
// Batch-compiles kernel files into a persistent overlay store so a
// production OverlayService can be deployed against a pre-built library:
// build the library offline once, serve online with zero place & route
// (the store's disk tier plus the warm-start knob cover every known
// kernel). Records are keyed exactly like the runtime cache — canonical
// alpha-renamed structural text + architecture signature + placer seed —
// so any kernel isomorphic to a compiled one hits the library too.
//
//   vcgra_overlayc --store DIR [arch/seed options] kernel.vk [more.vk ...]
//   vcgra_overlayc --store DIR --list       # print the library
//   vcgra_overlayc --store DIR --verify     # re-read + checksum every record
//   vcgra_overlayc --store DIR --gc         # collect cold records
//
// Options: --rows N --cols N --tracks N --format paper|single|half
//          --seed N
//          --gc-unused-runs N   (--gc) drop records untouched > N opens
//          --gc-max-bytes B     (--gc) evict coldest-first to fit B bytes
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "vcgra/common/strings.hpp"
#include "vcgra/common/timer.hpp"
#include "vcgra/runtime/overlay_cache.hpp"
#include "vcgra/store/overlay_store.hpp"
#include "vcgra/vcgra/compiler.hpp"
#include "vcgra/vcgra/dfg.hpp"

using namespace vcgra;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --store DIR [--rows N] [--cols N] [--tracks N]\n"
               "          [--format paper|single|half] [--seed N]\n"
               "          [--list] [--verify] [kernel-file ...]\n"
               "          [--gc [--gc-unused-runs N] [--gc-max-bytes B]]\n",
               argv0);
  return 2;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read kernel file '" + path + "'");
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string store_dir;
  overlay::OverlayArch arch;
  std::uint64_t seed = 1;
  bool list = false, verify = false, gc = false;
  store::OverlayStore::GcOptions gc_options;
  gc_options.unused_runs = 8;  // default: keep anything seen recently
  std::vector<std::string> kernel_files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--store") {
      store_dir = next();
    } else if (arg == "--rows") {
      arch.rows = std::atoi(next());
    } else if (arg == "--cols") {
      arch.cols = std::atoi(next());
    } else if (arg == "--tracks") {
      arch.tracks = std::atoi(next());
    } else if (arg == "--seed") {
      seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--format") {
      const std::string format = next();
      if (format == "paper") {
        arch.format = softfloat::FpFormat::paper();
      } else if (format == "single") {
        arch.format = softfloat::FpFormat::single_like();
      } else if (format == "half") {
        arch.format = softfloat::FpFormat::half_like();
      } else {
        std::fprintf(stderr, "unknown --format '%s'\n", format.c_str());
        return 2;
      }
    } else if (arg == "--list") {
      list = true;
    } else if (arg == "--verify") {
      verify = true;
    } else if (arg == "--gc") {
      gc = true;
    } else if (arg == "--gc-unused-runs") {
      gc_options.unused_runs = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--gc-max-bytes") {
      gc_options.max_bytes = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--help" || arg == "-h") {
      return usage(argv[0]);
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      return usage(argv[0]);
    } else {
      kernel_files.push_back(arg);
    }
  }
  if (store_dir.empty() || (kernel_files.empty() && !list && !verify && !gc)) {
    return usage(argv[0]);
  }

  try {
    store::OverlayStore library(store_dir);

    int failures = 0;
    for (const std::string& file : kernel_files) {
      try {
        const std::string text = read_file(file);
        const overlay::ParsedKernel parsed = overlay::parse_kernel_symbolic(text);
        const std::string key =
            runtime::structure_key(parsed.structural_text, arch, seed);
        common::WallTimer timer;
        // The canonical-DFG compile is mandatory: it is what the runtime
        // cache keys on, so the record serves every isomorphic kernel.
        const overlay::CompiledStructure structure =
            overlay::compile_structure_canonical(parsed, arch, seed);
        const double compile_seconds = timer.seconds();
        const bool wrote = library.save(key, structure);
        std::printf("%-28s %016llx  %2d PEs  %3d params  %s  %s\n", file.c_str(),
                    static_cast<unsigned long long>(store::fnv1a64(key)),
                    structure.report.pes_used,
                    static_cast<int>(structure.param_slots.size()),
                    common::human_seconds(compile_seconds).c_str(),
                    wrote ? "compiled" : "already in store");
      } catch (const std::exception& e) {
        std::fprintf(stderr, "%s: %s\n", file.c_str(), e.what());
        ++failures;
      }
    }

    if (gc) {
      const auto report = library.gc(gc_options);
      std::printf(
          "gc: %zu records scanned, %zu removed (%llu bytes), %llu bytes kept\n",
          report.scanned, report.removed,
          static_cast<unsigned long long>(report.bytes_removed),
          static_cast<unsigned long long>(report.bytes_kept));
    }

    if (list) {
      const auto records = library.list();
      std::printf("store %s: %zu records\n", store_dir.c_str(), records.size());
      for (const auto& record : records) {
        std::printf("  %-24s %6llu uses  %8llu bytes  last gen %llu\n",
                    record.filename.c_str(),
                    static_cast<unsigned long long>(record.uses),
                    static_cast<unsigned long long>(record.bytes),
                    static_cast<unsigned long long>(record.last_used));
      }
    }

    if (verify) {
      int bad = 0;
      const auto records = library.list();
      for (const auto& record : records) {
        try {
          const auto loaded = library.load_record(record.filename);
          // Round-trip determinism: re-serializing must be bit-identical.
          const auto bytes = store::serialize(*loaded.structure);
          const auto again = store::serialize(store::deserialize_structure(bytes));
          if (bytes != again) {
            throw store::CorruptRecord("round trip not bit-identical");
          }
        } catch (const std::exception& e) {
          std::fprintf(stderr, "  %s: %s\n", record.filename.c_str(), e.what());
          ++bad;
        }
      }
      std::printf("verify: %zu records, %d bad\n", records.size(), bad);
      failures += bad;
    }

    return failures == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "vcgra_overlayc: %s\n", e.what());
    return 1;
  }
}
