// vcgra_stats — pretty-print, diff, regression-check and validate the
// runtime's telemetry exports.
//
//   vcgra_stats stats.json                    pretty-print one snapshot
//   vcgra_stats --diff before.json after.json activity between snapshots
//   vcgra_stats --regress old.json new.json   perf pass/warn/fail table
//   vcgra_stats --check-trace trace.json      validate a Chrome trace file
//
// Snapshots are the JSON written by MetricsSnapshot::to_json() or
// ServiceStats::to_json() (any JSON object of numeric leaves works: the
// tool walks the tree generically). --diff subtracts `before` from
// `after` leaf-wise and prints only what changed.
//
// --regress is the CI perf gate: it compares two BENCH_exec.json (or any
// metrics snapshot) leaf-wise with per-metric noise thresholds and
// direction inference (telemetry/regress.hpp), prints the pass/warn/fail
// table, optionally writes the JSON report (--out report.json), and
// exits 1 when any metric regressed past 2x its noise threshold — CI
// currently runs it report-only against the previous cached artifact.
//
// --check-trace enforces what chrome://tracing/Perfetto need: a
// traceEvents array whose "X" events carry name/ts/dur/pid/tid, with
// non-negative durations and, per (tid, depth), non-overlapping spans.
// It also warns (without failing) when the trace reports dropped spans —
// ring overwrite means the oldest spans are missing, not that the file
// is malformed. Exit status is the check result, so CI can gate on it.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "vcgra/telemetry/json.hpp"
#include "vcgra/telemetry/regress.hpp"

using vcgra::telemetry::JsonValue;

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "vcgra_stats: cannot read '%s'\n", path.c_str());
    std::exit(2);
  }
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

JsonValue parse_file(const std::string& path) {
  JsonValue value;
  std::string error;
  if (!vcgra::telemetry::parse_json(read_file(path), &value, &error)) {
    std::fprintf(stderr, "vcgra_stats: %s: %s\n", path.c_str(), error.c_str());
    std::exit(2);
  }
  return value;
}

/// Flattens nested objects to "a.b.c" -> number leaves; non-numeric
/// leaves are skipped (names, booleans).
void flatten(const JsonValue& value, const std::string& prefix,
             std::map<std::string, double>* out) {
  if (value.is_number()) {
    (*out)[prefix] = value.number;
    return;
  }
  if (value.is_object()) {
    for (const auto& [key, child] : value.object) {
      flatten(child, prefix.empty() ? key : prefix + "." + key, out);
    }
  }
}

void print_leaves(const std::map<std::string, double>& leaves) {
  std::size_t width = 0;
  for (const auto& [name, value] : leaves) {
    (void)value;
    width = std::max(width, name.size());
  }
  for (const auto& [name, value] : leaves) {
    if (value == static_cast<double>(static_cast<long long>(value))) {
      std::printf("%-*s %lld\n", static_cast<int>(width), name.c_str(),
                  static_cast<long long>(value));
    } else {
      std::printf("%-*s %.6g\n", static_cast<int>(width), name.c_str(), value);
    }
  }
}

int cmd_print(const std::string& path) {
  std::map<std::string, double> leaves;
  flatten(parse_file(path), "", &leaves);
  if (leaves.empty()) {
    std::fprintf(stderr, "vcgra_stats: no numeric fields in '%s'\n",
                 path.c_str());
    return 1;
  }
  print_leaves(leaves);
  return 0;
}

int cmd_diff(const std::string& before_path, const std::string& after_path) {
  std::map<std::string, double> before, after;
  flatten(parse_file(before_path), "", &before);
  flatten(parse_file(after_path), "", &after);
  std::map<std::string, double> delta;
  for (const auto& [name, value] : after) {
    const auto it = before.find(name);
    const double base = it == before.end() ? 0.0 : it->second;
    if (value != base) delta[name] = value - base;
  }
  for (const auto& [name, value] : before) {
    (void)value;
    if (!after.count(name)) delta[name + " (removed)"] = -value;
  }
  if (delta.empty()) {
    std::printf("no change\n");
    return 0;
  }
  print_leaves(delta);
  return 0;
}

int cmd_regress(const std::string& old_path, const std::string& new_path,
                const std::string& out_path, bool verbose) {
  const JsonValue old_doc = parse_file(old_path);
  const JsonValue new_doc = parse_file(new_path);
  const vcgra::telemetry::RegressReport report =
      vcgra::telemetry::compare_snapshots(old_doc, new_doc);
  std::printf("%s\n", report.summary().c_str());
  const std::string table = report.table(verbose);
  if (!table.empty()) std::printf("%s", table.c_str());
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "vcgra_stats: cannot write '%s'\n",
                   out_path.c_str());
      return 2;
    }
    out << report.to_json();
  }
  return report.ok() ? 0 : 1;
}

int trace_fail(const std::string& message) {
  std::fprintf(stderr, "vcgra_stats: trace invalid: %s\n", message.c_str());
  return 1;
}

int cmd_check_trace(const std::string& path) {
  const JsonValue root = parse_file(path);
  const JsonValue* events = root.find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    return trace_fail("missing traceEvents array");
  }
  struct Span {
    double start = 0;
    double end = 0;
  };
  // Per (tid, depth): complete spans, for the overlap check.
  std::map<std::pair<long long, long long>, std::vector<Span>> lanes;
  std::size_t complete = 0;
  for (const JsonValue& event : events->array) {
    if (!event.is_object()) return trace_fail("event is not an object");
    const JsonValue* ph = event.find("ph");
    if (ph == nullptr || !ph->is_string()) {
      return trace_fail("event lacks a ph phase");
    }
    if (ph->string == "M") continue;  // metadata (thread names)
    if (ph->string != "X") {
      return trace_fail("unexpected phase '" + ph->string + "'");
    }
    const JsonValue* name = event.find("name");
    const JsonValue* ts = event.find("ts");
    const JsonValue* dur = event.find("dur");
    const JsonValue* pid = event.find("pid");
    const JsonValue* tid = event.find("tid");
    if (name == nullptr || !name->is_string() || name->string.empty()) {
      return trace_fail("X event lacks a name");
    }
    if (ts == nullptr || !ts->is_number() || dur == nullptr ||
        !dur->is_number() || pid == nullptr || !pid->is_number() ||
        tid == nullptr || !tid->is_number()) {
      return trace_fail("X event '" + name->string +
                        "' lacks numeric ts/dur/pid/tid");
    }
    if (ts->number < 0 || dur->number < 0) {
      return trace_fail("X event '" + name->string + "' has negative ts/dur");
    }
    long long depth = 0;
    if (const JsonValue* args = event.find("args")) {
      if (const JsonValue* d = args->find("depth")) {
        depth = static_cast<long long>(d->number);
      }
    }
    // Negative depth marks cross-thread spans (queue wait): they live on
    // the finishing thread's lane but overlap it legitimately.
    if (depth >= 0) {
      lanes[{static_cast<long long>(tid->number), depth}].push_back(
          Span{ts->number, ts->number + dur->number});
    }
    ++complete;
  }
  if (complete == 0) return trace_fail("no complete (ph=X) spans");
  // Same-depth spans of one thread are strictly sequential by
  // construction (a thread closes a span before opening the next at that
  // depth), so any overlap means broken timestamps or ring corruption.
  for (auto& [lane, spans] : lanes) {
    std::sort(spans.begin(), spans.end(),
              [](const Span& a, const Span& b) { return a.start < b.start; });
    for (std::size_t i = 1; i < spans.size(); ++i) {
      if (spans[i].start < spans[i - 1].end) {
        return trace_fail(
            "overlapping same-depth spans on tid " +
            std::to_string(lane.first) + " depth " +
            std::to_string(lane.second));
      }
    }
  }
  // Drops don't invalidate the file — the events present are still
  // well-formed — but the trace is incomplete, which CI should see.
  double dropped = 0;
  if (const JsonValue* top_drops = root.find("droppedSpans")) {
    dropped = top_drops->number;
  }
  for (const JsonValue& event : events->array) {
    const JsonValue* ph = event.find("ph");
    const JsonValue* name = event.find("name");
    if (ph != nullptr && ph->string == "M" && name != nullptr &&
        name->string == "dropped_spans") {
      if (const JsonValue* args = event.find("args")) {
        if (const JsonValue* count = args->find("count")) {
          const JsonValue* tid = event.find("tid");
          std::fprintf(stderr,
                       "vcgra_stats: warning: tid %lld dropped %lld spans to "
                       "ring overwrite\n",
                       tid != nullptr ? static_cast<long long>(tid->number) : -1,
                       static_cast<long long>(count->number));
        }
      }
    }
  }
  if (dropped > 0) {
    std::fprintf(stderr,
                 "vcgra_stats: warning: trace dropped %lld spans total — the "
                 "oldest spans were overwritten; treat stage coverage as "
                 "incomplete\n",
                 static_cast<long long>(dropped));
  }
  std::printf("trace ok: %zu spans across %zu (tid, depth) lanes\n", complete,
              lanes.size());
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: vcgra_stats <stats.json>\n"
               "       vcgra_stats --diff <before.json> <after.json>\n"
               "       vcgra_stats --regress <old.json> <new.json> "
               "[--out report.json] [--verbose]\n"
               "       vcgra_stats --check-trace <trace.json>\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 2 && std::strncmp(argv[1], "--", 2) != 0) {
    return cmd_print(argv[1]);
  }
  if (argc == 4 && std::strcmp(argv[1], "--diff") == 0) {
    return cmd_diff(argv[2], argv[3]);
  }
  if (argc >= 4 && std::strcmp(argv[1], "--regress") == 0) {
    std::string out_path;
    bool verbose = false;
    for (int i = 4; i < argc; ++i) {
      if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
        out_path = argv[++i];
      } else if (std::strcmp(argv[i], "--verbose") == 0) {
        verbose = true;
      } else {
        return usage();
      }
    }
    return cmd_regress(argv[2], argv[3], out_path, verbose);
  }
  if (argc == 3 && std::strcmp(argv[1], "--check-trace") == 0) {
    return cmd_check_trace(argv[2]);
  }
  return usage();
}
