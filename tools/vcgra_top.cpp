// vcgra_top — top-style live console for a running overlay service.
//
//   vcgra_top stats.json                   render one frame and exit
//   vcgra_top --watch live.json            repaint as the file changes
//
// The input is either the stats file an example writes (--stats, the
// {"service", "process", "monitor"} document) or the continuous
// Monitor's live export (ServiceOptions::monitor_export_path, rewritten
// atomically every sampling window) — --watch against the latter is a
// live view of a running service: throughput, latency percentiles,
// cache-tier hit rates, queue/arena gauges, health verdicts, anomaly
// flags and per-series sparklines.
//
// All rendering lives in telemetry/top.hpp (render_top_frame), so the
// frame is unit-tested headlessly; this file is the read-parse-repaint
// loop and nothing else.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#ifdef _WIN32
#include <io.h>
#define VCGRA_ISATTY _isatty
#define VCGRA_FILENO _fileno
#else
#include <unistd.h>
#define VCGRA_ISATTY isatty
#define VCGRA_FILENO fileno
#endif

#include "vcgra/telemetry/json.hpp"
#include "vcgra/telemetry/top.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: vcgra_top <stats.json>\n"
               "       vcgra_top --watch <stats.json> [--interval seconds] "
               "[--frames n] [--no-color]\n");
  return 2;
}

bool render_once(const std::string& path,
                 const vcgra::telemetry::TopOptions& options, bool clear,
                 bool quiet_on_error) {
  std::ifstream in(path);
  if (!in) {
    if (!quiet_on_error) {
      std::fprintf(stderr, "vcgra_top: cannot read '%s'\n", path.c_str());
    }
    return false;
  }
  std::ostringstream text;
  text << in.rdbuf();
  vcgra::telemetry::JsonValue doc;
  std::string error;
  if (!vcgra::telemetry::parse_json(text.str(), &doc, &error)) {
    // Under --watch a partially-written file (non-atomic writers) parses
    // on the next repaint; only a one-shot render reports it.
    if (!quiet_on_error) {
      std::fprintf(stderr, "vcgra_top: %s: %s\n", path.c_str(), error.c_str());
    }
    return false;
  }
  const std::string frame = vcgra::telemetry::render_top_frame(doc, options);
  if (clear) std::fputs("\x1b[2J\x1b[H", stdout);
  std::fputs(frame.c_str(), stdout);
  std::fflush(stdout);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool watch = false;
  bool color = VCGRA_ISATTY(VCGRA_FILENO(stdout)) != 0;
  double interval = 1.0;
  long frames = 0;  // 0 = until interrupted
  std::string path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--watch") == 0) {
      watch = true;
    } else if (std::strcmp(argv[i], "--no-color") == 0) {
      color = false;
    } else if (std::strcmp(argv[i], "--interval") == 0 && i + 1 < argc) {
      interval = std::atof(argv[++i]);
      if (interval < 0.05) interval = 0.05;
    } else if (std::strcmp(argv[i], "--frames") == 0 && i + 1 < argc) {
      frames = std::atol(argv[++i]);
    } else if (argv[i][0] != '-' && path.empty()) {
      path = argv[i];
    } else {
      return usage();
    }
  }
  if (path.empty()) return usage();

  vcgra::telemetry::TopOptions options;
  options.color = color;
  if (!watch) {
    return render_once(path, options, /*clear=*/false, /*quiet_on_error=*/false)
               ? 0
               : 1;
  }
  long rendered = 0;
  while (frames == 0 || rendered < frames) {
    if (render_once(path, options, /*clear=*/true, /*quiet_on_error=*/true)) {
      ++rendered;
    }
    std::this_thread::sleep_for(std::chrono::duration<double>(interval));
  }
  return 0;
}
