// §III ablation: what the TCON mechanism buys, and how the parameter-leaf
// budget shapes the mapping.
//
// (a) Routing-resource comparison (the ≥40% routing-consumption reduction
//     claim the paper carries over from [11]): routed switch count and
//     wirelength of the specialized parameterized PE vs the conventional
//     realization of the same overlay.
// (b) Mapper ablation: sweeping max parameter leaves per cut (0 = plain
//     conventional mapping) shows how TLUT/TCON counts emerge.
#include <cstdio>

#include "vcgra/common/strings.hpp"
#include "vcgra/common/table.hpp"
#include "vcgra/common/timer.hpp"
#include "vcgra/netlist/passes.hpp"
#include "vcgra/place/placer.hpp"
#include "vcgra/route/router.hpp"
#include "vcgra/softfloat/fpcircuits.hpp"
#include "vcgra/techmap/conventional.hpp"
#include "vcgra/techmap/mapper.hpp"

using namespace vcgra;

namespace {

struct RoutedNumbers {
  std::size_t luts = 0;
  std::size_t wirelength = 0;
  std::size_t switches = 0;
};

RoutedNumbers par_numbers(const netlist::Netlist& design) {
  RoutedNumbers numbers;
  numbers.luts = netlist::stats(design).luts;
  const auto problem = place::PlacementProblem::from_netlist(design);
  auto arch = fpga::ArchParams::sized_for(problem.num_logic_blocks(),
                                          problem.num_pads());
  arch.channel_width = 14;
  place::PlaceOptions popt;
  popt.effort = 0.25;
  const auto placement = place::place(problem, arch, popt);
  const fpga::RRGraph graph(arch);
  route::RouteOptions ropt;
  ropt.max_iterations = 30;
  const auto routed = route::route(graph, problem, placement, ropt);
  numbers.wirelength = routed.wirelength;
  numbers.switches = routed.switches_used;
  return numbers;
}

}  // namespace

int main() {
  common::WallTimer timer;
  std::printf("== §III ablation: TCONs and the parameter budget ==\n\n");

  // Use the half-like format so the whole ablation finishes quickly; the
  // Table I bench covers the full paper format.
  const auto format = softfloat::FpFormat::half_like();
  softfloat::MacPe pe =
      softfloat::build_mac_pe(format, softfloat::PeStyle::kParameterized, 8);
  const netlist::Netlist source = netlist::clean(pe.netlist).netlist;

  // --- (a) routing-resource comparison ----------------------------------------
  const techmap::MappedNetlist mapped = techmap::tconmap(source, 4);
  std::vector<bool> params(source.params().size(), false);
  const auto coeff = softfloat::FpValue::from_double(format, 0.437);
  for (int i = 0; i < format.total_bits(); ++i) {
    params[static_cast<std::size_t>(i)] = (coeff.bits() >> i) & 1;
  }
  params[static_cast<std::size_t>(format.total_bits()) + 3] = true;
  const netlist::Netlist specialized =
      netlist::dead_code_eliminate(mapped.specialize(params)).netlist;
  const netlist::Netlist conventional = techmap::realize_conventional(mapped, 4);

  const RoutedNumbers param_numbers = par_numbers(specialized);
  const RoutedNumbers conv_numbers = par_numbers(conventional);

  std::printf("Routing-resource consumption, MAC PE (we=%d, wf=%d):\n", format.we,
              format.wf);
  common::AsciiTable routing({"Implementation", "LUTs", "Routed WL",
                              "Programmed switches"});
  routing.add_row({"Conventional overlay", common::strprintf("%zu", conv_numbers.luts),
                   common::strprintf("%zu", conv_numbers.wirelength),
                   common::strprintf("%zu", conv_numbers.switches)});
  routing.add_row({"Fully parameterized (specialized)",
                   common::strprintf("%zu", param_numbers.luts),
                   common::strprintf("%zu", param_numbers.wirelength),
                   common::strprintf("%zu", param_numbers.switches)});
  routing.print();
  std::printf("Switch-demand reduction: %.1f%% | WL reduction: %.1f%%\n\n",
              100.0 * (1.0 - static_cast<double>(param_numbers.switches) /
                                 static_cast<double>(conv_numbers.switches)),
              100.0 * (1.0 - static_cast<double>(param_numbers.wirelength) /
                                 static_cast<double>(conv_numbers.wirelength)));

  // --- (b) parameter-budget sweep ----------------------------------------------
  std::printf("Mapper ablation: parameter leaves allowed per cut:\n");
  common::AsciiTable sweep(
      {"max_params", "LUTs", "TLUTs", "TCONs", "Depth", "Map time"});
  for (const int budget : {0, 1, 2, 3, 5, 8}) {
    techmap::MapOptions options;
    options.lut_inputs = 4;
    options.param_aware = budget > 0;
    options.max_params = budget;
    common::WallTimer map_timer;
    const auto stats = techmap::map_netlist(source, options).stats();
    sweep.add_row({common::strprintf("%d", budget),
                   common::strprintf("%zu", stats.total_luts()),
                   common::strprintf("%zu", stats.tluts),
                   common::strprintf("%zu", stats.tcons),
                   common::strprintf("%d", stats.depth),
                   common::human_seconds(map_timer.seconds())});
  }
  sweep.print();
  std::printf(
      "\nmax_params=0 is the conventional mapping; the first 2-3 parameter\n"
      "leaves buy most of the LUT savings (partial products become TCONs),\n"
      "matching the paper's observation that the intra-PE network is the\n"
      "main beneficiary of parameterization.\n");
  std::printf("\nTotal bench time: %.1f s\n", timer.seconds());
  return 0;
}
