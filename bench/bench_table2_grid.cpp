// Table II reproduction: resource utilization of a 4x4 VCGRA grid.
//
// Conventional overlay: 41 routing-switch groups (9 VSBs + 32 VCBs) and
// 25 32-bit settings registers, realized in FPGA logic / flip-flops.
// Fully parameterized overlay: both move into configuration memory — the
// logic cost is zero by construction. The bench also prints the derived
// LUT/FF bill and a grid-size sweep.
#include <cstdio>

#include "vcgra/common/strings.hpp"
#include "vcgra/common/table.hpp"
#include "vcgra/vcgra/arch.hpp"

using namespace vcgra;

int main() {
  std::printf("== Table II: resource utilization of a 4x4 VCGRA grid ==\n\n");

  overlay::OverlayArch arch;
  arch.rows = 4;
  arch.cols = 4;
  const auto conventional = overlay::conventional_overlay_cost(arch);
  const auto parameterized = overlay::parameterized_overlay_cost(arch);

  common::AsciiTable table({"VCGRA", "Inter-Network", "Settings register"});
  table.add_row({"Conventional",
                 common::strprintf("%zu", conventional.routing_switch_groups),
                 common::strprintf("%zu", conventional.settings_registers)});
  table.add_row({"Fully Parameterized",
                 common::strprintf("%zu", parameterized.routing_switch_groups),
                 common::strprintf("%zu", parameterized.settings_registers)});
  table.print();
  std::printf("\nPaper: Conventional 41 / 25, Fully Parameterized 0 / 0\n");

  std::printf("\nDerived implementation bill (4x4 grid, %d virtual tracks):\n",
              arch.tracks);
  common::AsciiTable bill(
      {"VCGRA", "Network mux LUTs", "Settings FF bits", "Config-mem bits"});
  bill.add_row({"Conventional", common::strprintf("%zu", conventional.mux_luts),
                common::strprintf("%zu", conventional.settings_ff_bits),
                common::strprintf("%zu", conventional.config_mem_bits)});
  bill.add_row({"Fully Parameterized",
                common::strprintf("%zu", parameterized.mux_luts),
                common::strprintf("%zu", parameterized.settings_ff_bits),
                common::strprintf("%zu", parameterized.config_mem_bits)});
  bill.print();

  std::printf("\nGrid-size sweep (conventional overlay logic cost):\n");
  common::AsciiTable sweep({"Grid", "PEs", "VSBs", "VCBs", "Switch groups",
                            "Registers", "Mux LUTs", "FF bits"});
  for (const int n : {2, 3, 4, 6, 8, 12, 16}) {
    overlay::OverlayArch a;
    a.rows = n;
    a.cols = n;
    const auto cost = overlay::conventional_overlay_cost(a);
    sweep.add_row({common::strprintf("%dx%d", n, n),
                   common::strprintf("%d", a.num_pes()),
                   common::strprintf("%d", a.num_vsbs()),
                   common::strprintf("%d", a.num_vcbs()),
                   common::strprintf("%zu", cost.routing_switch_groups),
                   common::strprintf("%zu", cost.settings_registers),
                   common::strprintf("%zu", cost.mux_luts),
                   common::strprintf("%zu", cost.settings_ff_bits)});
  }
  sweep.print();
  std::printf(
      "\nThe fully parameterized overlay is 0 LUTs / 0 FFs at every size:\n"
      "settings registers map onto configuration memory and the virtual\n"
      "network maps onto the FPGA's physical switch blocks (TCONs).\n");
  return 0;
}
