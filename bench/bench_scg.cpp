// §II-B micro-benchmarks: the specialization stage (SCG).
//
// The paper's DCS machinery must evaluate the PPC's Boolean functions and
// rewrite frames on every parameter change; its feasibility rests on that
// being cheap relative to the frame writes. This bench measures PPC
// generation, SCG evaluation throughput, and frame diffing on the MAC PE,
// plus the PPC-memory scaling the paper lists as an overhead.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "vcgra/common/rng.hpp"
#include "vcgra/common/strings.hpp"
#include "vcgra/common/table.hpp"
#include "vcgra/common/timer.hpp"
#include "vcgra/netlist/passes.hpp"
#include "vcgra/pconf/ppc.hpp"
#include "vcgra/softfloat/fpcircuits.hpp"
#include "vcgra/techmap/mapper.hpp"

using namespace vcgra;

namespace {

struct PeSetup {
  netlist::Netlist source;
  techmap::MappedNetlist mapped;
  pconf::ParameterizedConfiguration ppc;
};

PeSetup build_pe(softfloat::FpFormat format, int counter_bits) {
  PeSetup setup;
  softfloat::MacPe pe =
      softfloat::build_mac_pe(format, softfloat::PeStyle::kParameterized, counter_bits);
  setup.source = netlist::clean(pe.netlist).netlist;
  setup.mapped = techmap::tconmap(setup.source, 4);
  setup.ppc = pconf::ParameterizedConfiguration::generate(setup.mapped);
  return setup;
}

std::vector<bool> random_params(const netlist::Netlist& source,
                                common::Rng& rng) {
  std::vector<bool> params(source.params().size());
  for (std::size_t i = 0; i < params.size(); ++i) params[i] = rng.next_bool();
  return params;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("== §II-B: SCG / PPC micro-benchmarks ==\n\n");

  std::printf("PPC scaling with PE precision:\n");
  common::AsciiTable scaling({"Format", "TLUTs", "TCONs", "Tunable bits",
                              "BDD nodes", "Generation"});
  for (const auto format :
       {softfloat::FpFormat{4, 7}, softfloat::FpFormat::half_like(),
        softfloat::FpFormat::paper()}) {
    common::WallTimer timer;
    const PeSetup setup = build_pe(format, 8);
    const auto mstats = setup.mapped.stats();
    const auto pstats = setup.ppc.stats();
    scaling.add_row({common::strprintf("(%d,%d)", format.we, format.wf),
                     common::strprintf("%zu", mstats.tluts),
                     common::strprintf("%zu", mstats.tcons),
                     common::strprintf("%zu", pstats.tunable_bits),
                     common::strprintf("%zu", pstats.bdd_nodes),
                     common::human_seconds(timer.seconds())});
  }
  scaling.print();
  std::printf("\n");

  // Shared setup for the timed benchmarks (half format keeps them snappy).
  static PeSetup setup = build_pe(softfloat::FpFormat::half_like(), 8);
  static common::Rng rng(99);

  benchmark::Initialize(&argc, argv);
  benchmark::RegisterBenchmark("scg_specialize_pe", [](benchmark::State& state) {
    std::uint64_t bits_done = 0;
    for (auto _ : state) {
      const auto params = random_params(setup.source, rng);
      benchmark::DoNotOptimize(setup.ppc.specialize(params));
      bits_done += setup.ppc.stats().tunable_bits;
    }
    state.counters["bits/s"] = benchmark::Counter(
        static_cast<double>(bits_done), benchmark::Counter::kIsRate);
  });
  benchmark::RegisterBenchmark("scg_dirty_frames", [](benchmark::State& state) {
    const auto a = setup.ppc.specialize(random_params(setup.source, rng));
    const auto b = setup.ppc.specialize(random_params(setup.source, rng));
    for (auto _ : state) {
      benchmark::DoNotOptimize(setup.ppc.dirty_frames(a, b));
    }
  });
  benchmark::RegisterBenchmark("ppc_generate_pe", [](benchmark::State& state) {
    for (auto _ : state) {
      benchmark::DoNotOptimize(
          pconf::ParameterizedConfiguration::generate(setup.mapped));
    }
  });
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
