// Overlay runtime service benchmark: what the new src/runtime layer buys
// over calling the tool flow per request.
//
//   A. Compiled-overlay cache — a hit skips synth/map/place/route
//      entirely; the bench demands the hit path be >= 10x faster.
//   B. Batched multi-threaded execution — the same job mix through 1..N
//      executor threads, with bit-exact output equality asserted across
//      all thread counts (determinism is part of the contract, not a
//      best-effort property).
//   C. Reconfiguration-aware scheduling — recurring kernels over N
//      virtual grid instances under the pconf/SCG cost model (§V):
//      kernel-affinity placement turns almost every grid swap into a
//      no-op, and the modeled HWICAP seconds saved are reported.
//
// Exits non-zero if the cache speedup target or bit-exactness fails, so
// CI can run it as a smoke check.
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "vcgra/common/log.hpp"
#include "vcgra/common/rng.hpp"
#include "vcgra/common/strings.hpp"
#include "vcgra/common/table.hpp"
#include "vcgra/common/timer.hpp"
#include "vcgra/runtime/service.hpp"
#include "vcgra/telemetry/health.hpp"
#include "vcgra/telemetry/metrics.hpp"
#include "vcgra/telemetry/trace.hpp"
#include "vcgra/vision/pipeline.hpp"
#include "vcgra/vision/pipeline_service.hpp"
#include "vcgra/vision/synthetic.hpp"

using namespace vcgra;

namespace {

/// N-tap dot product y = sum c_i * x_i in the kernel language
/// (N mul PEs + N-1 add PEs; N=8 fills 15 of the 16 PEs of a 4x4 grid).
///
/// `variant` rotates (and, past N, reverses) the order the products
/// enter the reduction tree: kernels with different variants are
/// distinct *structures* — the association order is structural, so the
/// canonicalized text differs even though alpha-renaming erases the
/// signal-name suffixes. Kernels differing only in `scale` share one
/// structure and differ only in their parameter binding — the
/// distinction sections A, D and E measure from different sides.
/// (Variants must stay within 2N per section for distinctness.)
std::string dot_kernel(int taps, double scale, int variant = 0) {
  std::string text;
  for (int i = 0; i < taps; ++i) {
    text += common::strprintf("input x%dv%d; param c%dv%d = %.17g;\n", i,
                              variant, i, variant,
                              scale * (i + 1) * (i % 2 ? -0.25 : 0.375));
    text += common::strprintf("p%d = mul(x%dv%d, c%dv%d);\n", i, i, variant, i,
                              variant);
  }
  const int start = variant % taps;
  const bool reversed = (variant / taps) % 2 != 0;
  std::vector<std::string> terms;
  for (int i = 0; i < taps; ++i) {
    const int step = reversed ? taps - 1 - i : i;
    terms.push_back(common::strprintf("p%d", (start + step) % taps));
  }
  int level = 0;
  while (terms.size() > 1) {
    std::vector<std::string> next;
    for (std::size_t i = 0; i + 1 < terms.size(); i += 2) {
      std::string name = terms.size() == 2
                             ? std::string("y")
                             : common::strprintf("s%d_%zu", level, i / 2);
      text += common::strprintf("%s = add(%s, %s);\n", name.c_str(),
                               terms[i].c_str(), terms[i + 1].c_str());
      next.push_back(std::move(name));
    }
    if (terms.size() % 2) next.push_back(terms.back());
    terms = std::move(next);
    ++level;
  }
  text += "output y;\n";
  return text;
}

std::map<std::string, std::vector<double>> job_inputs(int taps,
                                                      std::size_t length,
                                                      double phase,
                                                      int variant = 0) {
  std::map<std::string, std::vector<double>> inputs;
  for (int t = 0; t < taps; ++t) {
    std::vector<double> stream;
    stream.reserve(length);
    for (std::size_t i = 0; i < length; ++i) {
      stream.push_back(((static_cast<double>(i) + phase) / 16.0 - 2.0) *
                       (t % 2 ? -1.0 : 1.0));
    }
    inputs[common::strprintf("x%dv%d", t, variant)] = std::move(stream);
  }
  return inputs;
}

std::uint64_t fold_bits(std::uint64_t hash, const overlay::RunResult& run) {
  for (const auto& [name, stream] : run.outputs) {
    for (const auto& value : stream) {
      hash ^= value.bits();
      hash *= 0x100000001b3ULL;
    }
  }
  return hash;
}

constexpr int kTaps = 8;

}  // namespace

int main() {
  std::printf("== Overlay runtime service: cache, batching, reconfig-aware scheduling ==\n");
  bool ok = true;

  // --- A: compiled-overlay cache ---------------------------------------------
  {
    std::printf("\n[A] Overlay cache: hit path vs full tool flow\n");

    constexpr int kDistinct = 16;
    constexpr int kHitRounds = 12;
    constexpr int kAttempts = 3;
    // Short streams keep the hit path near its floor (dispatch + a brief
    // simulation), so the ratio isolates the avoided tool flow.
    const std::size_t stream = 16;

    // One attempt = fresh service, measure median miss and hit latency.
    // The gate is the miss/hit *ratio* (machine-speed independent), and
    // the attempt medians + a median over 3 attempts absorb scheduler
    // hiccups and CPU-frequency excursions on loaded CI machines.
    struct Attempt {
      double miss_median = 0;
      double hit_median = 0;
      double speedup() const {
        return hit_median > 0 ? miss_median / hit_median : 0.0;
      }
    };
    std::vector<Attempt> attempts;
    for (int attempt = 0; attempt < kAttempts; ++attempt) {
      runtime::ServiceOptions options;
      options.threads = 1;  // isolate the cache effect
      runtime::OverlayService service(options);

      std::vector<double> miss_latencies;
      for (int k = 0; k < kDistinct; ++k) {
        runtime::JobRequest request;
        // Distinct variants: 16 distinct *structures*, so every first
        // run pays the full place & route flow (param-only reuse is
        // measured separately by section D).
        request.kernel_text = dot_kernel(kTaps, 1.0 + 0.01 * k, k);
        request.inputs = job_inputs(kTaps, stream, 0.0, k);
        const runtime::JobResult result = service.run(std::move(request));
        if (result.cache_hit || result.structure_hit) ok = false;
        miss_latencies.push_back(result.latency_seconds);
      }

      std::vector<double> hit_latencies;
      for (int round = 0; round < kHitRounds; ++round) {
        for (int k = 0; k < kDistinct; ++k) {
          runtime::JobRequest request;
          request.kernel_text = dot_kernel(kTaps, 1.0 + 0.01 * k, k);
          request.inputs = job_inputs(kTaps, stream, 0.0, k);
          const runtime::JobResult result = service.run(std::move(request));
          if (!result.cache_hit) ok = false;
          hit_latencies.push_back(result.latency_seconds);
        }
      }
      Attempt measured;
      measured.miss_median = runtime::percentile(miss_latencies, 0.5);
      measured.hit_median = runtime::percentile(hit_latencies, 0.5);
      attempts.push_back(measured);
      if (attempt == 0) {
        std::printf("  %s\n", service.cache().stats().to_string().c_str());
      }
    }

    std::vector<double> speedups;
    for (const Attempt& attempt : attempts) {
      speedups.push_back(attempt.speedup());
    }
    const double speedup = runtime::percentile(speedups, 0.5);
    std::printf("  %d distinct kernels, %zu-sample streams, %d attempts\n",
                kDistinct, stream, kAttempts);
    for (int attempt = 0; attempt < kAttempts; ++attempt) {
      const Attempt& measured = attempts[static_cast<std::size_t>(attempt)];
      std::printf("  attempt %d: miss %s  hit %s  speedup %.1fx\n", attempt + 1,
                  common::human_seconds(measured.miss_median).c_str(),
                  common::human_seconds(measured.hit_median).c_str(),
                  measured.speedup());
    }
    if (speedup < 10.0) {
      std::printf("  FAIL: median cache hit speedup %.1fx below the 10x target\n",
                  speedup);
      ok = false;
    } else {
      std::printf("  PASS: hit path >= 10x faster than the tool flow "
                  "(median of %d attempts: %.1fx)\n",
                  kAttempts, speedup);
    }
  }

  // --- B: batched multi-threaded execution ------------------------------------
  {
    std::printf("\n[B] Multi-threaded throughput (bit-exact across thread counts)\n");
    const unsigned hw = std::thread::hardware_concurrency();
    std::vector<int> thread_counts{1, 2, 4};
    if (hw > 4) thread_counts.push_back(static_cast<int>(hw));

    constexpr int kKernels = 8;
    constexpr int kJobs = 96;
    const std::size_t stream = 2048;

    common::AsciiTable table({"Threads", "Wall", "Jobs/s", "Speedup", "p99"});
    double base_seconds = 0;
    std::uint64_t reference_hash = 0;
    bool first = true;
    for (const int threads : thread_counts) {
      runtime::ServiceOptions options;
      options.threads = threads;
      runtime::OverlayService service(options);

      common::WallTimer timer;
      std::vector<std::future<runtime::JobResult>> futures;
      futures.reserve(kJobs);
      for (int j = 0; j < kJobs; ++j) {
        runtime::JobRequest request;
        request.kernel_text = dot_kernel(kTaps, 2.0 + 0.01 * (j % kKernels));
        request.inputs = job_inputs(kTaps, stream, 0.25 * j);
        futures.push_back(service.submit(std::move(request)));
      }
      std::uint64_t hash = 0xcbf29ce484222325ULL;
      for (auto& future : futures) hash = fold_bits(hash, future.get().run);
      const double wall = timer.seconds();
      if (first) {
        base_seconds = wall;
        reference_hash = hash;
        first = false;
      } else if (hash != reference_hash) {
        std::printf("  FAIL: outputs at %d threads differ from 1-thread run\n",
                    threads);
        ok = false;
      }
      const runtime::ServiceStats stats = service.stats();
      table.add_row({common::strprintf("%d", threads),
                     common::human_seconds(wall),
                     common::strprintf("%.1f", kJobs / wall),
                     common::strprintf("%.2fx", base_seconds / wall),
                     common::human_seconds(stats.p99_latency_seconds)});
    }
    table.print();
    std::printf("  outputs bit-exact across all thread counts: %s\n",
                ok ? "yes" : "NO");
    if (hw <= 1) {
      std::printf("  (1 hardware thread available: wall-clock scaling is not\n"
                  "   observable on this machine; determinism still holds)\n");
    }
  }

  // --- C: reconfiguration-aware scheduling -------------------------------------
  {
    std::printf("\n[C] Reconfig-aware scheduling (pconf/SCG cost model, Section V)\n");
    constexpr int kKernels = 4;
    constexpr int kJobs = 200;
    struct Policy {
      const char* name;
      int instances;
      std::size_t scan_window;  // 1 = plain FIFO, no batch reordering
    };
    const Policy policies[] = {
        {"FIFO, 1 grid", 1, 1},
        {"batched, 1 grid", 1, 32},
        {"batched, 4 grids", kKernels, 32},
    };
    common::AsciiTable table({"Policy", "Reconfigs", "Param-only", "Avoided",
                              "HWICAP modeled", "HWICAP saved"});
    for (const Policy& policy : policies) {
      runtime::ServiceOptions options;
      options.threads = 2;
      options.virtual_instances = policy.instances;
      options.schedule_scan_window = policy.scan_window;
      options.cost_model = runtime::ServiceOptions::CostModel::kScg;
      runtime::OverlayService service(options);

      std::vector<std::future<runtime::JobResult>> futures;
      for (int j = 0; j < kJobs; ++j) {
        runtime::JobRequest request;
        request.kernel_text = dot_kernel(kTaps, 3.0 + 0.01 * (j % kKernels));
        request.inputs = job_inputs(kTaps, 32, 0.5 * j);
        futures.push_back(service.submit(std::move(request)));
      }
      for (auto& future : futures) future.get();

      const runtime::SchedulerStats stats = service.stats().scheduler;
      table.add_row({policy.name,
                     common::strprintf("%llu",
                                       static_cast<unsigned long long>(
                                           stats.reconfigurations)),
                     common::strprintf("%llu",
                                       static_cast<unsigned long long>(
                                           stats.param_respecializations)),
                     common::strprintf("%llu",
                                       static_cast<unsigned long long>(
                                           stats.reconfigurations_avoided)),
                     common::human_seconds(stats.modeled_reconfig_seconds),
                     common::human_seconds(stats.avoided_reconfig_seconds)});
    }
    table.print();
    std::printf(
        "  %d recurring kernels round-robin over %d jobs. The kernels share\n"
        "  one structure (they differ only in coefficients), so every swap is\n"
        "  a cheap param-only respecialization; queue batching still groups\n"
        "  same-configuration jobs between swaps, and affinity placement over\n"
        "  %d instances pins each coefficient set and avoids even those.\n",
        kKernels, kJobs, kKernels);
  }

  // --- D: parameter respecialization vs cold compile ---------------------------
  {
    std::printf("\n[D] Param sweep: respecialize vs cold compile "
                "(Dynamic Circuit Specialization)\n");
    constexpr int kColdStructures = 4;
    constexpr int kRespecs = 16;
    constexpr int kAttempts = 3;
    constexpr int kSweepTaps = 16;  // 31 PEs: needs the 6x6 grid below
    const std::size_t stream = 16;
    overlay::OverlayArch sweep_arch;
    sweep_arch.rows = 6;
    sweep_arch.cols = 6;

    // Per attempt: a fresh service compiles kColdStructures distinct
    // structures (the cold baseline), then sweeps kRespecs coefficient
    // sets over the first structure — each sweep job must skip place &
    // route entirely. Gate on the cold/respec *ratio*, median of
    // medians, same de-flaking as the cache gate in section A.
    struct Attempt {
      double cold_median = 0;
      double respec_median = 0;
      double speedup() const {
        return respec_median > 0 ? cold_median / respec_median : 0.0;
      }
    };
    std::vector<Attempt> attempts;
    bool fast_path_correct = true;
    for (int attempt = 0; attempt < kAttempts; ++attempt) {
      runtime::ServiceOptions options;
      options.threads = 1;
      runtime::OverlayService service(options);

      std::vector<double> cold_latencies;
      for (int k = 0; k < kColdStructures; ++k) {
        runtime::JobRequest request;
        request.arch = sweep_arch;
        request.kernel_text = dot_kernel(kSweepTaps, 5.0, 100 + k);
        request.inputs = job_inputs(kSweepTaps, stream, 0.0, 100 + k);
        const runtime::JobResult result = service.run(std::move(request));
        if (result.structure_hit) fast_path_correct = false;
        cold_latencies.push_back(result.latency_seconds);
      }

      std::vector<double> respec_latencies;
      for (int r = 0; r < kRespecs; ++r) {
        runtime::JobRequest request;
        // Same structure as cold kernel 100, new coefficients each time:
        // half via text literals, half via the JobRequest::params
        // override map — both must ride the fast path.
        request.arch = sweep_arch;
        if (r % 2) {
          request.kernel_text = dot_kernel(kSweepTaps, 6.0 + 0.01 * r, 100);
        } else {
          request.kernel_text = dot_kernel(kSweepTaps, 5.0, 100);
          for (int i = 0; i < kSweepTaps; ++i) {
            request.params[common::strprintf("c%dv100", i)] =
                7.0 + 0.01 * r + i;
          }
        }
        request.inputs = job_inputs(kSweepTaps, stream, 0.0, 100);
        const runtime::JobResult result = service.run(std::move(request));
        // The acceptance criterion: zero place & route work on the sweep.
        if (!result.structure_hit || result.compile_seconds != 0) {
          fast_path_correct = false;
        }
        respec_latencies.push_back(result.latency_seconds);
      }

      Attempt measured;
      measured.cold_median = runtime::percentile(cold_latencies, 0.5);
      measured.respec_median = runtime::percentile(respec_latencies, 0.5);
      attempts.push_back(measured);
      if (attempt == 0) {
        std::printf("  %s\n", service.cache().stats().to_string().c_str());
      }
    }

    std::vector<double> speedups;
    for (const Attempt& attempt : attempts) speedups.push_back(attempt.speedup());
    const double speedup = runtime::percentile(speedups, 0.5);
    for (int attempt = 0; attempt < kAttempts; ++attempt) {
      const Attempt& measured = attempts[static_cast<std::size_t>(attempt)];
      std::printf("  attempt %d: cold %s  respec %s  speedup %.1fx\n",
                  attempt + 1,
                  common::human_seconds(measured.cold_median).c_str(),
                  common::human_seconds(measured.respec_median).c_str(),
                  measured.speedup());
    }
    if (!fast_path_correct) {
      std::printf("  FAIL: a sweep job re-ran place & route (or a cold job "
                  "unexpectedly hit)\n");
      ok = false;
    }
    if (speedup < 10.0) {
      std::printf("  FAIL: median respecialization speedup %.1fx below the "
                  "10x target\n", speedup);
      ok = false;
    } else if (fast_path_correct) {
      std::printf("  PASS: coefficient changes respecialize >= 10x faster "
                  "than a cold compile (median of %d attempts: %.1fx)\n",
                  kAttempts, speedup);
    }
  }

  // --- E: persistent overlay store — restart warm gate -------------------------
  {
    std::printf("\n[E] Persistent store: service restart vs cold start "
                "(disk-load + specialize vs tool flow)\n");
    constexpr int kStructures = 6;
    constexpr int kAttempts = 5;
    constexpr int kStoreTaps = 16;  // 31 PEs: the 6x6 grid below
    const std::size_t stream = 4;   // keep simulation out of the ratio
    overlay::OverlayArch store_arch;
    store_arch.rows = 6;
    store_arch.cols = 6;

    // VCGRA_STORE_DIR lets CI cache the store directory across workflow
    // runs (the restart phase then also exercises cross-run reuse); by
    // default a scratch directory keeps local runs hermetic.
    const char* env_dir = std::getenv("VCGRA_STORE_DIR");
    const std::filesystem::path store_dir =
        env_dir ? std::filesystem::path(env_dir)
                : std::filesystem::temp_directory_path() /
                      common::strprintf("vcgra-bench-store-%d",
                                        static_cast<int>(getpid()));

    const auto kernel_for = [](int k) {
      return dot_kernel(kStoreTaps, 9.0, 300 + k);
    };

    // The gate compares the two quantities the store actually trades:
    // the tool-flow seconds a cold compile pays (per-job compile_seconds)
    // against the store's own `store.load` histogram over the restart
    // phase. End-to-end job latency — which also carries scheduler,
    // queue and simulation noise from the rest of the process — is
    // reported but no longer gated; it made this gate flaky.
    struct Attempt {
      double cold_median = 0;   // end-to-end, report-only
      double disk_median = 0;   // end-to-end, report-only
      double compile_median = 0;  // per-job tool-flow seconds (cold phase)
      double load_p50 = 0;        // store.load histogram over the restart
      double end_to_end() const {
        return disk_median > 0 ? cold_median / disk_median : 0.0;
      }
      double speedup() const {
        return load_p50 > 0 ? compile_median / load_p50 : 0.0;
      }
    };
    std::vector<Attempt> attempts;
    bool restart_clean = true;
    double steady_p50 = 0;
    for (int attempt = 0; attempt < kAttempts; ++attempt) {
      // Cold baseline: no store attached, every kernel pays the tool flow.
      std::vector<double> cold_latencies;
      std::vector<double> cold_compiles;
      {
        runtime::ServiceOptions options;
        options.threads = 1;
        runtime::OverlayService service(options);
        for (int k = 0; k < kStructures; ++k) {
          runtime::JobRequest request;
          request.arch = store_arch;
          request.kernel_text = kernel_for(k);
          request.inputs = job_inputs(kStoreTaps, stream, 0.0, 300 + k);
          const runtime::JobResult result = service.run(std::move(request));
          if (result.structure_hit) restart_clean = false;
          cold_latencies.push_back(result.latency_seconds);
          cold_compiles.push_back(result.compile_seconds);
        }
      }

      // Populate: a store-backed service compiles (or disk-loads, when CI
      // handed us a cached directory) and persists on shutdown.
      {
        runtime::ServiceOptions options;
        options.threads = 1;
        options.store_dir = store_dir.string();
        runtime::OverlayService service(options);
        for (int k = 0; k < kStructures; ++k) {
          runtime::JobRequest request;
          request.arch = store_arch;
          request.kernel_text = kernel_for(k);
          request.inputs = job_inputs(kStoreTaps, stream, 0.0, 300 + k);
          service.run(std::move(request));
        }
      }  // destructor drains the write-behind queue

      // Restart against the populated store: the gate. Zero place &
      // route; every structure deserializes off disk. The store.load
      // histogram delta over this phase is exactly the disk-tier cost.
      std::vector<double> disk_latencies;
      double load_p50 = 0;
      const telemetry::HistogramSnapshot load_base =
          telemetry::metrics().histogram("store.load").snapshot();
      {
        runtime::ServiceOptions options;
        options.threads = 1;
        options.store_dir = store_dir.string();
        runtime::OverlayService service(options);
        for (int k = 0; k < kStructures; ++k) {
          runtime::JobRequest request;
          request.arch = store_arch;
          request.kernel_text = kernel_for(k);
          request.inputs = job_inputs(kStoreTaps, stream, 0.0, 300 + k);
          const runtime::JobResult result = service.run(std::move(request));
          if (!result.disk_hit || !result.structure_hit ||
              result.compile_seconds != 0) {
            restart_clean = false;
          }
          disk_latencies.push_back(result.latency_seconds);
        }
        const telemetry::HistogramSnapshot loads =
            telemetry::metrics().histogram("store.load").snapshot().diff_since(
                load_base);
        if (loads.count != static_cast<std::uint64_t>(kStructures)) {
          restart_clean = false;  // a structure skipped the disk tier
        }
        load_p50 = loads.percentile(0.5);
        // Steady state on the restarted service: memory hits only.
        for (int k = 0; k < kStructures; ++k) {
          runtime::JobRequest request;
          request.arch = store_arch;
          request.kernel_text = kernel_for(k);
          request.inputs = job_inputs(kStoreTaps, stream, 0.0, 300 + k);
          service.run(std::move(request));
        }
        const runtime::ServiceStats stats = service.stats();
        if (stats.cache.structure_misses != 0 ||
            stats.cache.compile_seconds != 0) {
          restart_clean = false;  // some place & route ran after restart
        }
        if (attempt == 0) {
          steady_p50 = stats.p50_latency_seconds;
          std::printf("  %s\n", stats.cache.to_string().c_str());
        }
      }

      Attempt measured;
      measured.cold_median = runtime::percentile(cold_latencies, 0.5);
      measured.disk_median = runtime::percentile(disk_latencies, 0.5);
      measured.compile_median = runtime::percentile(cold_compiles, 0.5);
      measured.load_p50 = load_p50;
      attempts.push_back(measured);
    }

    std::vector<double> speedups;
    for (const Attempt& attempt : attempts) speedups.push_back(attempt.speedup());
    const double speedup = runtime::percentile(speedups, 0.5);
    for (int attempt = 0; attempt < kAttempts; ++attempt) {
      const Attempt& measured = attempts[static_cast<std::size_t>(attempt)];
      std::printf("  attempt %d: compile %s  store.load p50 %s  speedup "
                  "%.1fx  (end-to-end cold %s / disk %s = %.1fx, "
                  "report-only)\n",
                  attempt + 1,
                  common::human_seconds(measured.compile_median).c_str(),
                  common::human_seconds(measured.load_p50).c_str(),
                  measured.speedup(),
                  common::human_seconds(measured.cold_median).c_str(),
                  common::human_seconds(measured.disk_median).c_str(),
                  measured.end_to_end());
    }
    std::printf("  restarted-service steady-state p50: %s\n",
                common::human_seconds(steady_p50).c_str());
    if (!restart_clean) {
      std::printf("  FAIL: a restarted-service job re-ran place & route (or "
                  "missed the disk tier)\n");
      ok = false;
    }
    if (speedup < 10.0) {
      std::printf("  FAIL: median compile-vs-disk-load speedup %.1fx below "
                  "the 10x target\n", speedup);
      ok = false;
    } else if (restart_clean) {
      std::printf("  PASS: restart reaches steady state with zero place & "
                  "route; disk load >= 10x faster than the tool flow it "
                  "replaces (median of %d attempts: %.1fx)\n",
                  kAttempts, speedup);
    }

    if (!env_dir) {
      std::error_code ec;
      std::filesystem::remove_all(store_dir, ec);
    }
  }

  // --- F: precompiled execution plans — steady-state datapath gate -------------
  {
    std::printf("\n[F] Execution plans: batched SoA executor vs legacy "
                "interpreter (warm service, STREAM-triad shape)\n");
    constexpr int kAttempts = 3;
    constexpr int kReps = 7;          // measured jobs per attempt (post-warm)
    const std::size_t stream = 1 << 15;

    // STREAM triad y[i] = a[i] + alpha * b[i] — the shape the paper's
    // overlay streams at one sample per cycle.
    const std::string triad_text =
        "input a; input b;\nparam alpha = 3.0;\n"
        "t = mul(b, alpha);\ny = add(a, t);\noutput y;\n";
    const auto triad_inputs = [&]() {
      std::map<std::string, std::vector<double>> inputs;
      for (const char* name : {"a", "b"}) {
        std::vector<double>& s = inputs[name];
        s.reserve(stream);
        for (std::size_t i = 0; i < stream; ++i) {
          s.push_back((static_cast<double>(i % 509) / 128.0 - 2.0) *
                      (name[0] == 'a' ? 1.0 : -0.75));
        }
      }
      return inputs;
    };

    // Warm-service steady state on both engines: compile once, then
    // measure the executor time of repeat jobs only. Ratio-only gate
    // (median of per-attempt medians), like every other gate here.
    struct Attempt {
      double legacy_median = 0;
      double plan_median = 0;
      double speedup() const {
        return plan_median > 0 ? legacy_median / plan_median : 0.0;
      }
    };
    const auto measure = [&](bool use_plan, bool* engine_ok) {
      runtime::ServiceOptions options;
      options.threads = 1;
      options.use_plan_executor = use_plan;
      runtime::OverlayService service(options);
      std::vector<double> exec_seconds;
      std::uint64_t hash = 0xcbf29ce484222325ULL;
      for (int r = 0; r < kReps + 1; ++r) {  // job 0 warms the cache/plan
        runtime::JobRequest request;
        request.kernel_text = triad_text;
        request.inputs = triad_inputs();
        const runtime::JobResult result = service.run(std::move(request));
        if (result.plan_executed != use_plan) *engine_ok = false;
        if (r > 0) exec_seconds.push_back(result.exec_seconds);
        hash = fold_bits(hash, result.run);
      }
      return std::pair<double, std::uint64_t>(
          runtime::percentile(exec_seconds, 0.5), hash);
    };

    std::vector<Attempt> attempts;
    bool engine_ok = true;
    bool bits_equal = true;
    for (int attempt = 0; attempt < kAttempts; ++attempt) {
      Attempt measured;
      const auto [legacy_median, legacy_hash] = measure(false, &engine_ok);
      const auto [plan_median, plan_hash] = measure(true, &engine_ok);
      measured.legacy_median = legacy_median;
      measured.plan_median = plan_median;
      if (legacy_hash != plan_hash) bits_equal = false;
      attempts.push_back(measured);
    }

    // Allocation-freedom at steady state: two identical jobs on this
    // thread's warm arena must not grow any pool.
    {
      // Compiled directly (not through the cache) so the artifact keeps
      // the kernel's real stream names.
      const overlay::Compiled compiled =
          overlay::compile_kernel(triad_text, overlay::OverlayArch{});
      auto plan = std::make_shared<const overlay::ExecPlan>(
          overlay::ExecPlan::lower(compiled));
      const overlay::PlanExecutor executor(plan);
      executor.run_doubles(triad_inputs());  // warm-up
      const auto before = overlay::PlanExecutor::thread_arena_stats();
      executor.run_doubles(triad_inputs());
      executor.run_doubles(triad_inputs());
      const auto after = overlay::PlanExecutor::thread_arena_stats();
      if (after.grows != before.grows) {
        std::printf("  FAIL: warm arena grew during steady-state jobs "
                    "(%llu -> %llu grows)\n",
                    static_cast<unsigned long long>(before.grows),
                    static_cast<unsigned long long>(after.grows));
        ok = false;
      } else {
        std::printf("  arena: zero per-job allocations after warm-up "
                    "(capacity %zu words, %llu grows total)\n",
                    after.capacity_words,
                    static_cast<unsigned long long>(after.grows));
      }
    }

    std::vector<double> speedups;
    for (const Attempt& attempt : attempts) speedups.push_back(attempt.speedup());
    const double speedup = runtime::percentile(speedups, 0.5);
    for (int attempt = 0; attempt < kAttempts; ++attempt) {
      const Attempt& measured = attempts[static_cast<std::size_t>(attempt)];
      std::printf("  attempt %d: interpreter %s  plan %s  (%.1f vs %.1f "
                  "Melem/s)  speedup %.1fx\n",
                  attempt + 1,
                  common::human_seconds(measured.legacy_median).c_str(),
                  common::human_seconds(measured.plan_median).c_str(),
                  measured.legacy_median > 0
                      ? static_cast<double>(stream) / measured.legacy_median / 1e6
                      : 0.0,
                  measured.plan_median > 0
                      ? static_cast<double>(stream) / measured.plan_median / 1e6
                      : 0.0,
                  measured.speedup());
    }
    if (!bits_equal) {
      std::printf("  FAIL: plan executor outputs differ from the legacy "
                  "interpreter\n");
      ok = false;
    }
    if (!engine_ok) {
      std::printf("  FAIL: a job ran on the wrong execution engine\n");
      ok = false;
    }
    if (speedup < 5.0) {
      std::printf("  FAIL: median steady-state speedup %.1fx below the 5x "
                  "target\n", speedup);
      ok = false;
    } else if (bits_equal && engine_ok) {
      std::printf("  PASS: plan executor >= 5x the legacy interpreter at "
                  "steady state, bit-exact (median of %d attempts: %.1fx)\n",
                  kAttempts, speedup);
    }
  }

  // --- G: telemetry overhead gate ----------------------------------------------
  {
    std::printf("\n[G] Telemetry: disabled-span cost + tracing overhead "
                "(warm service, STREAM-triad shape)\n");
    bool span_budgets_ok = true;

    // G1: a disabled span must cost one well-predicted branch — the
    // whole point of leaving VCGRA_TRACE_SPAN compiled into hot paths.
    // 15ns is deliberately generous (the real cost is ~1ns): the gate
    // catches an accidental clock read or allocation on the off path,
    // not scheduler jitter.
    {
      telemetry::Tracer::set_enabled(false);
      constexpr int kIters = 1 << 24;  // 16M spans
      common::WallTimer timer;
      for (int i = 0; i < kIters; ++i) {
        VCGRA_TRACE_SPAN("bench.noop");
        asm volatile("" ::: "memory");  // keep the guard from folding away
      }
      const double ns_per_span = timer.seconds() * 1e9 / kIters;
      std::printf("  disabled span: %.2f ns each over %d iterations\n",
                  ns_per_span, kIters);
      if (ns_per_span > 15.0) {
        std::printf("  FAIL: disabled span costs %.2f ns (> 15 ns budget — "
                    "something heavier than a branch is on the off path)\n",
                    ns_per_span);
        ok = false;
        span_budgets_ok = false;
      }
    }

    // G2: an enabled span (two clock reads + a ring record + a
    // histogram bucket) must stay within a fixed nanosecond budget.
    // This is the stable quantity behind the old "tracing keeps
    // >= 0.97x of disabled throughput" gate: a warm service job emits
    // a few dozen spans, so span cost is what actually decides the
    // throughput ratio — but the end-to-end ratio rides ~100us jobs
    // whose run-to-run noise modes exceed the few-percent budget, so
    // runs failed on machine weather, not regressions (the same flake
    // class gate [E] had). Gate the microbenchmark (deterministic,
    // catches an allocation/syscall/lock sneaking into the record
    // path); the end-to-end ratio is reported below, report-only.
    {
      telemetry::Tracer::set_enabled(true);
      constexpr int kIters = 1 << 20;  // 1M spans, wraps the ring
      common::WallTimer timer;
      for (int i = 0; i < kIters; ++i) {
        VCGRA_TRACE_SPAN("bench.noop");
        asm volatile("" ::: "memory");
      }
      const double ns_per_span = timer.seconds() * 1e9 / kIters;
      telemetry::Tracer::set_enabled(false);
      telemetry::Tracer::reset();
      std::printf("  enabled span: %.2f ns each over %d iterations\n",
                  ns_per_span, kIters);
      if (ns_per_span > 400.0) {
        std::printf("  FAIL: enabled span costs %.2f ns (> 400 ns budget — "
                    "something heavier than clocks + ring + histogram is "
                    "on the record path)\n",
                    ns_per_span);
        ok = false;
        span_budgets_ok = false;
      }
    }

    // G2b (report-only): end-to-end throughput with tracing on vs off,
    // interleaved at job granularity on one warm service so adjacent
    // off/on jobs share the same instantaneous machine state; the
    // median per-pair ratio is the fairest available estimate, printed
    // for the record.
    constexpr int kAttempts = 5;
    constexpr int kReps = 9;  // off/on job pairs per attempt
    const std::size_t stream = 1 << 14;
    const std::string triad_text =
        "input a; input b;\nparam alpha = 3.0;\n"
        "t = mul(b, alpha);\ny = add(a, t);\noutput y;\n";
    const auto triad_inputs = [&]() {
      std::map<std::string, std::vector<double>> inputs;
      for (const char* name : {"a", "b"}) {
        std::vector<double>& s = inputs[name];
        s.reserve(stream);
        for (std::size_t i = 0; i < stream; ++i) {
          s.push_back((static_cast<double>(i % 509) / 128.0 - 2.0) *
                      (name[0] == 'a' ? 1.0 : -0.75));
        }
      }
      return inputs;
    };
    std::vector<double> all_latencies;  // feeds the G3 histogram check
    const auto run_job = [&](runtime::OverlayService& service, bool traced) {
      telemetry::Tracer::set_enabled(traced);
      runtime::JobRequest request;
      request.kernel_text = triad_text;
      request.inputs = triad_inputs();
      return service.run(std::move(request)).latency_seconds;
    };
    std::vector<double> pair_ratios;
    for (int attempt = 0; attempt < kAttempts; ++attempt) {
      runtime::ServiceOptions options;
      options.threads = 1;
      runtime::OverlayService service(options);
      run_job(service, false);  // warm the cache/plan/arena
      std::vector<double> attempt_ratios;
      for (int r = 0; r < kReps; ++r) {
        const bool off_first = r % 2 == 0;  // alternate within the pair too
        const double first = run_job(service, !off_first);
        const double second = run_job(service, off_first);
        const double off_latency = off_first ? first : second;
        const double on_latency = off_first ? second : first;
        all_latencies.push_back(off_latency);
        all_latencies.push_back(on_latency);
        attempt_ratios.push_back(on_latency > 0 ? off_latency / on_latency
                                                : 0.0);
      }
      std::printf("  attempt %d: median pair throughput ratio %.3fx over "
                  "%d off/on job pairs\n",
                  attempt + 1, runtime::percentile(attempt_ratios, 0.5),
                  kReps);
      pair_ratios.insert(pair_ratios.end(), attempt_ratios.begin(),
                         attempt_ratios.end());
    }
    telemetry::Tracer::set_enabled(false);
    telemetry::Tracer::reset();
    const double ratio = runtime::percentile(pair_ratios, 0.5);
    std::printf("  tracing-enabled throughput %.3fx of disabled "
                "(median of %d interleaved job pairs; report-only — the "
                "gated quantity is the span cost above)\n",
                ratio, kAttempts * kReps);
    if (span_budgets_ok) {
      std::printf("  PASS: enabled span within the 400 ns budget; disabled "
                  "span within 15 ns\n");
    }

    // G3: the histogram percentiles the service now reports must agree
    // with the exact sorted-sample percentile to within one bucket
    // (buckets are <= 6.25% wide).
    {
      telemetry::LatencyHistogram hist;
      for (const double latency : all_latencies) hist.record_seconds(latency);
      const double exact = runtime::percentile(all_latencies, 0.5);
      const double from_hist = hist.snapshot().percentile(0.5);
      const int exact_bucket = telemetry::LatencyHistogram::bucket_index(
          static_cast<std::uint64_t>(exact * 1e9));
      const int hist_bucket = telemetry::LatencyHistogram::bucket_index(
          static_cast<std::uint64_t>(from_hist * 1e9));
      std::printf("  histogram p50 %s vs exact p50 %s (bucket %d vs %d)\n",
                  common::human_seconds(from_hist).c_str(),
                  common::human_seconds(exact).c_str(), hist_bucket,
                  exact_bucket);
      if (std::abs(hist_bucket - exact_bucket) > 1) {
        std::printf("  FAIL: histogram p50 more than one bucket away from "
                    "the exact percentile\n");
        ok = false;
      }
    }
  }

  // --- H: fused multi-job batches — shared-structure many-small-jobs gate ------
  {
    std::printf("\n[H] Fused batches: waves of small same-config jobs, "
                "fused plan sweep vs per-job plan execution\n");
    constexpr int kAttempts = 3;
    constexpr int kWaves = 5;  // measured waves per run (wave 0 warms)
    constexpr int kJobsPerWave = 64;
    // Short streams on purpose: the gate measures the per-job fixed
    // costs (lookup, acquire, plan fetch, span accounting) that fusion
    // amortizes, not the datapath — section [F] already gates that.
    const std::size_t stream = 4;
    const std::string fused_kernel = dot_kernel(kTaps, 5.0, 7);

    // One worker thread and a plugged pool per wave: every job queues
    // before the first drain, so the fused service gathers real batches
    // while the per-job service drains the identical backlog one at a
    // time. Ratio-only (median of per-attempt wave medians), bit-exact
    // hash against the interpreter service as the oracle.
    const auto measure = [&](std::size_t max_batch, bool use_plan,
                             std::uint64_t* hash_out, int* max_batch_seen,
                             std::uint64_t* arena_grows) {
      runtime::ServiceOptions options;
      options.threads = 1;
      options.max_batch_jobs = max_batch;
      options.use_plan_executor = use_plan;
      runtime::OverlayService service(options);
      std::vector<double> wave_seconds;
      std::uint64_t hash = 0xcbf29ce484222325ULL;
      std::uint64_t grows_after_warm = 0;
      for (int w = 0; w < kWaves + 1; ++w) {  // wave 0 warms cache + arena
        std::promise<void> release;
        std::shared_future<void> gate(release.get_future());
        service.executor().submit_detached([gate]() { gate.wait(); });
        std::vector<std::future<runtime::JobResult>> futures;
        for (int j = 0; j < kJobsPerWave; ++j) {
          runtime::JobRequest request;
          request.kernel_text = fused_kernel;
          request.inputs = job_inputs(kTaps, stream, 0.25 * j, 7);
          futures.push_back(service.submit(std::move(request)));
        }
        common::WallTimer timer;
        release.set_value();
        for (auto& future : futures) {
          const runtime::JobResult result = future.get();
          if (max_batch_seen != nullptr) {
            *max_batch_seen = std::max(*max_batch_seen, result.batch_size);
          }
          hash ^= result.run.cycles;
          hash *= 0x100000001b3ULL;
          hash ^= result.run.fp_ops;
          hash *= 0x100000001b3ULL;
          hash = fold_bits(hash, result.run);
        }
        const double seconds = timer.seconds();
        if (w == 0) {
          grows_after_warm =
              telemetry::metrics().counter("exec.arena_grows").value();
        } else {
          wave_seconds.push_back(seconds);
        }
      }
      if (arena_grows != nullptr) {
        *arena_grows =
            telemetry::metrics().counter("exec.arena_grows").value() -
            grows_after_warm;
      }
      *hash_out = hash;
      return runtime::percentile(wave_seconds, 0.5);
    };

    struct Attempt {
      double per_job_median = 0;
      double fused_median = 0;
      double speedup() const {
        return fused_median > 0 ? per_job_median / fused_median : 0.0;
      }
    };
    std::vector<Attempt> attempts;
    bool bits_equal = true;
    bool batches_formed = true;
    bool arena_steady = true;
    std::uint64_t oracle_hash = 0;
    measure(1, false, &oracle_hash, nullptr, nullptr);  // interpreter oracle
    for (int attempt = 0; attempt < kAttempts; ++attempt) {
      Attempt measured;
      std::uint64_t per_job_hash = 0;
      std::uint64_t fused_hash = 0;
      int max_batch_seen = 1;
      std::uint64_t fused_grows = 0;
      measured.per_job_median = measure(1, true, &per_job_hash, nullptr,
                                        nullptr);
      measured.fused_median = measure(16, true, &fused_hash, &max_batch_seen,
                                      &fused_grows);
      if (per_job_hash != oracle_hash || fused_hash != oracle_hash) {
        bits_equal = false;
      }
      if (max_batch_seen < 2) batches_formed = false;
      if (fused_grows != 0) arena_steady = false;
      attempts.push_back(measured);
      std::printf("  attempt %d: per-job wave %s  fused wave %s  speedup "
                  "%.1fx  (largest batch %d)\n",
                  attempt + 1,
                  common::human_seconds(measured.per_job_median).c_str(),
                  common::human_seconds(measured.fused_median).c_str(),
                  measured.speedup(), max_batch_seen);
    }

    std::vector<double> speedups;
    for (const Attempt& attempt : attempts) speedups.push_back(attempt.speedup());
    const double speedup = runtime::percentile(speedups, 0.5);
    if (!bits_equal) {
      std::printf("  FAIL: fused or per-job outputs differ from the "
                  "interpreter oracle\n");
      ok = false;
    }
    if (!batches_formed) {
      std::printf("  FAIL: no fused batch formed (batch_size never "
                  "exceeded 1)\n");
      ok = false;
    }
    if (!arena_steady) {
      std::printf("  FAIL: the executor arena grew during post-warm fused "
                  "waves\n");
      ok = false;
    }
    if (speedup < 2.0) {
      std::printf("  FAIL: median fused-batch speedup %.1fx below the 2x "
                  "target\n", speedup);
      ok = false;
    } else if (bits_equal && batches_formed && arena_steady) {
      std::printf("  PASS: fused sweeps run same-config job waves >= 2x "
                  "faster than per-job plans, bit-exact, no arena growth "
                  "(median of %d attempts: %.1fx)\n",
                  kAttempts, speedup);
    }
  }

  // --- I: kernel-graph pipelines — whole-DAG submit vs per-job DCS -------------
  {
    std::printf("\n[I] Kernel graphs: pinned pipeline graphs + sessions vs "
                "per-job DCS submit\n");
    constexpr int kAttempts = 3;
    constexpr int kRunsPerAttempt = 3;
    // A small frame on purpose: the gate measures the per-stage fixed
    // costs a pinned graph removes (queue round trips, per-job lookups,
    // per-frame admission, host glue between stages), not the pixel
    // datapath — which both engines share bit for bit.
    vision::FundusParams fparams;
    fparams.width = 8;
    fparams.height = 8;
    common::Rng rng(29);
    const vision::FundusImage fundus = vision::generate_fundus(fparams, rng);
    vision::PipelineParams params;
    params.denoise_size = 3;
    params.matched_size = 5;
    params.orientations = 3;
    params.texture_size = 5;
    const overlay::OverlayArch arch;

    // FNV over every stage image of the run: the two engines must agree
    // bit for bit (the graphs preserve the DCS association order).
    const auto fold_images = [](const vision::PipelineResult& result) {
      std::uint64_t hash = 0xcbf29ce484222325ULL;
      for (const auto* stage :
           {&result.stages.matched, &result.stages.textured}) {
        for (const float v : stage->data()) {
          std::uint32_t bits;
          std::memcpy(&bits, &v, sizeof bits);
          hash ^= bits;
          hash *= 0x100000001b3ULL;
        }
      }
      for (const float v : result.stages.segmented.data()) {
        std::uint32_t bits;
        std::memcpy(&bits, &v, sizeof bits);
        hash ^= bits;
        hash *= 0x100000001b3ULL;
      }
      return hash;
    };

    // One warm run primes the cache; the measured runs are pure
    // steady-state service traffic. The graph path pins the pipeline up
    // front — PipelineGraphRunner admits the three bank graphs once
    // (the analog of the DCS warm run priming the service cache), so
    // every measured frame is session feeds only. Ratio-only, like
    // every gate here.
    const auto measure = [&](bool graph_path, std::uint64_t* hash_out,
                             std::uint64_t* arena_grows) {
      runtime::ServiceOptions options;
      options.threads = 1;
      runtime::OverlayService service(options);
      std::unique_ptr<vision::PipelineGraphRunner> runner;
      if (graph_path) {
        runner = std::make_unique<vision::PipelineGraphRunner>(params, arch,
                                                               service);
      }
      std::vector<double> run_seconds;
      std::uint64_t hash = 0;
      std::uint64_t grows_after_warm = 0;
      for (int r = 0; r < kRunsPerAttempt + 1; ++r) {  // run 0 warms
        common::WallTimer timer;
        const vision::PipelineResult result =
            graph_path ? runner->run(fundus.rgb, fundus.field_of_view)
                       : vision::run_pipeline_service_dcs(
                             fundus.rgb, fundus.field_of_view, params, arch,
                             service);
        const double seconds = timer.seconds();
        hash = fold_images(result);
        if (r == 0) {
          grows_after_warm =
              telemetry::metrics().counter("exec.arena_grows").value();
        } else {
          run_seconds.push_back(seconds);
        }
      }
      if (arena_grows != nullptr) {
        *arena_grows =
            telemetry::metrics().counter("exec.arena_grows").value() -
            grows_after_warm;
      }
      *hash_out = hash;
      return runtime::percentile(run_seconds, 0.5);
    };

    struct Attempt {
      double dcs_median = 0;
      double graph_median = 0;
      double speedup() const {
        return graph_median > 0 ? dcs_median / graph_median : 0.0;
      }
    };
    std::vector<Attempt> attempts;
    bool bits_equal = true;
    bool arena_steady = true;
    for (int attempt = 0; attempt < kAttempts; ++attempt) {
      Attempt measured;
      std::uint64_t dcs_hash = 0;
      std::uint64_t graph_hash = 0;
      std::uint64_t graph_grows = 0;
      measured.dcs_median = measure(false, &dcs_hash, nullptr);
      measured.graph_median = measure(true, &graph_hash, &graph_grows);
      if (dcs_hash != graph_hash) bits_equal = false;
      if (graph_grows != 0) arena_steady = false;
      attempts.push_back(measured);
      std::printf("  attempt %d: per-job DCS %s  graph %s  speedup %.1fx\n",
                  attempt + 1,
                  common::human_seconds(measured.dcs_median).c_str(),
                  common::human_seconds(measured.graph_median).c_str(),
                  measured.speedup());
    }

    std::vector<double> speedups;
    for (const Attempt& attempt : attempts) speedups.push_back(attempt.speedup());
    const double speedup = runtime::percentile(speedups, 0.5);
    if (!bits_equal) {
      std::printf("  FAIL: graph pipeline images differ from the per-job DCS "
                  "engine\n");
      ok = false;
    }
    if (!arena_steady) {
      std::printf("  FAIL: the executor arena grew during post-warm graph "
                  "runs\n");
      ok = false;
    }
    if (speedup < 2.0) {
      std::printf("  FAIL: median graph-pipeline speedup %.1fx below the 2x "
                  "target\n", speedup);
      ok = false;
    } else if (bits_equal && arena_steady) {
      std::printf("  PASS: pinned graphs + streaming sessions run the vessel "
                  "pipeline >= 2x faster than per-job DCS, bit-exact, no "
                  "arena growth (median of %d attempts: %.1fx)\n",
                  kAttempts, speedup);
    }
  }

  // --- J: continuous-monitor overhead gate -------------------------------------
  {
    std::printf("\n[J] Continuous monitor: sampler + health tick cost and "
                "warm-service throughput with a 100 ms monitor\n");

    // J1 (gated): the cost of one monitor tick — registry snapshot,
    // window diff, series push, rule evaluation — over the *real*
    // process registry, which the gates above populated with dozens of
    // counters and histograms. At the production 100 ms interval the
    // <= 1% throughput claim reduces to "one tick costs <= 1 ms of one
    // core"; the tick is deterministic, so gate it directly instead of
    // the weather-prone end-to-end ratio (the gate [E]/[G] idiom).
    {
      telemetry::MonitorOptions moptions;
      moptions.interval_seconds = 0.1;
      telemetry::Monitor monitor(telemetry::metrics(), moptions);
      constexpr int kTicks = 200;
      // The gates above left degraded-looking history in the global
      // registry (deliberate arena growth, ring-wrapping span storms);
      // the resulting transition logs are expected, not bench output.
      const common::LogLevel saved_level = common::log_level();
      common::set_log_level(common::LogLevel::kError);
      monitor.tick_at(telemetry::trace_now_ns());  // baseline snapshot
      common::WallTimer timer;
      for (int i = 0; i < kTicks; ++i) {
        monitor.tick_at(telemetry::trace_now_ns());
      }
      const double us_per_tick = timer.seconds() * 1e6 / kTicks;
      common::set_log_level(saved_level);
      const telemetry::MetricsSnapshot snap = telemetry::metrics().snapshot();
      std::printf("  monitor tick: %.1f us each over %d ticks "
                  "(%zu metrics, %zu series)\n",
                  us_per_tick, kTicks,
                  snap.counters.size() + snap.gauges.size() +
                      snap.histograms.size(),
                  monitor.series().series().size());
      if (us_per_tick > 1000.0) {
        std::printf("  FAIL: a monitor tick costs %.1f us (> 1 ms budget = "
                    "1%% of the 100 ms interval on one core)\n",
                    us_per_tick);
        ok = false;
      } else {
        std::printf("  PASS: tick cost %.1f us <= 1 ms (1%% of the 100 ms "
                    "sampling interval)\n", us_per_tick);
      }
    }

    // J2 (report-only): end-to-end warm-service throughput with the
    // monitor on vs off, interleaved at job granularity across two warm
    // single-thread services so adjacent jobs share machine state; the
    // median per-pair ratio is printed for the record against the <= 1%
    // target. ~100 us jobs carry noise modes well past 1%, which is why
    // the gated quantity is J1.
    {
      constexpr int kAttempts = 3;
      constexpr int kReps = 9;
      const std::string triad_text =
          "input a; input b;\nparam alpha = 3.0;\n"
          "t = mul(b, alpha);\ny = add(a, t);\noutput y;\n";
      const auto triad_inputs = []() {
        std::map<std::string, std::vector<double>> inputs;
        for (const char* name : {"a", "b"}) {
          std::vector<double>& s = inputs[name];
          s.reserve(1 << 14);
          for (std::size_t i = 0; i < (1 << 14); ++i) {
            s.push_back((static_cast<double>(i % 509) / 128.0 - 2.0) *
                        (name[0] == 'a' ? 1.0 : -0.75));
          }
        }
        return inputs;
      };
      const auto run_job = [&](runtime::OverlayService& service) {
        runtime::JobRequest request;
        request.kernel_text = triad_text;
        request.inputs = triad_inputs();
        return service.run(std::move(request)).latency_seconds;
      };
      std::vector<double> pair_ratios;
      // The monitored services' first windows see the whole bench
      // lifetime as one delta and log the same expected transitions.
      const common::LogLevel saved_level = common::log_level();
      common::set_log_level(common::LogLevel::kError);
      for (int attempt = 0; attempt < kAttempts; ++attempt) {
        runtime::ServiceOptions plain_options;
        plain_options.threads = 1;
        runtime::OverlayService plain(plain_options);
        runtime::ServiceOptions monitored_options;
        monitored_options.threads = 1;
        monitored_options.monitor_interval_seconds = 0.1;
        runtime::OverlayService monitored(monitored_options);
        run_job(plain);      // warm both caches
        run_job(monitored);
        std::vector<double> attempt_ratios;
        for (int r = 0; r < kReps; ++r) {
          const bool plain_first = r % 2 == 0;
          const double first = run_job(plain_first ? plain : monitored);
          const double second = run_job(plain_first ? monitored : plain);
          const double off = plain_first ? first : second;
          const double on = plain_first ? second : first;
          attempt_ratios.push_back(on > 0 ? off / on : 0.0);
        }
        pair_ratios.insert(pair_ratios.end(), attempt_ratios.begin(),
                           attempt_ratios.end());
        std::printf("  attempt %d: median monitored/unmonitored throughput "
                    "ratio %.3fx over %d job pairs\n",
                    attempt + 1, runtime::percentile(attempt_ratios, 0.5),
                    kReps);
      }
      common::set_log_level(saved_level);
      std::printf("  monitored throughput %.3fx of unmonitored at a 100 ms "
                  "interval (median of %d interleaved pairs; target >= 0.99x; "
                  "report-only — the gated quantity is the tick cost above)\n",
                  runtime::percentile(pair_ratios, 0.5), kAttempts * kReps);
    }
  }

  std::printf("\n%s\n", ok ? "bench_runtime: PASS" : "bench_runtime: FAIL");
  return ok ? 0 : 1;
}
