// §II-A compile-time reproduction: the VCGRA tool flow (synthesis, PE
// mapping, placement, routing at PE granularity) versus the standard
// LUT-level FPGA flow for the same application kernel.
//
// The paper's claim: the higher abstraction level shrinks the problem by
// orders of magnitude, so application recompiles take milliseconds, not
// minutes. We run the identical 4-tap dot-product kernel through both
// flows. To keep the bench under a minute the FPGA flow uses the
// half-precision-like format (5,10) — a *smaller* circuit than the paper
// format, i.e. the reported ratio is a conservative lower bound.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "vcgra/common/strings.hpp"
#include "vcgra/common/table.hpp"
#include "vcgra/common/timer.hpp"
#include "vcgra/netlist/passes.hpp"
#include "vcgra/place/placer.hpp"
#include "vcgra/route/router.hpp"
#include "vcgra/softfloat/fpcircuits.hpp"
#include "vcgra/techmap/mapper.hpp"
#include "vcgra/vcgra/compiler.hpp"

using namespace vcgra;

namespace {

const std::vector<double> kCoefficients{0.5, 0.25, -0.75, 1.5};

/// LUT-level flow: synthesize the dot-product datapath, map, place, route.
struct FpgaFlowReport {
  double synth_seconds = 0;
  double map_seconds = 0;
  double place_seconds = 0;
  double route_seconds = 0;
  std::size_t luts = 0;
  double total() const {
    return synth_seconds + map_seconds + place_seconds + route_seconds;
  }
};

FpgaFlowReport run_fpga_flow(softfloat::FpFormat format) {
  FpgaFlowReport report;
  common::WallTimer stage;

  netlist::Netlist design("dot4");
  netlist::NetlistBuilder builder(design);
  std::vector<netlist::Bus> products;
  for (std::size_t i = 0; i < kCoefficients.size(); ++i) {
    const netlist::Bus x =
        builder.input_bus(common::strprintf("x%zu", i), format.total_bits());
    const netlist::Bus c =
        builder.input_bus(common::strprintf("c%zu", i), format.total_bits());
    products.push_back(softfloat::build_fp_multiplier(builder, format, x, c));
  }
  while (products.size() > 1) {
    std::vector<netlist::Bus> next;
    for (std::size_t i = 0; i + 1 < products.size(); i += 2) {
      next.push_back(
          softfloat::build_fp_adder(builder, format, products[i], products[i + 1]));
    }
    if (products.size() % 2) next.push_back(products.back());
    products = std::move(next);
  }
  builder.mark_output_bus(products[0]);
  const netlist::Netlist cleaned = netlist::clean(design).netlist;
  report.synth_seconds = stage.seconds();
  stage.restart();

  const techmap::MappedNetlist mapped = techmap::map_conventional(cleaned, 4);
  std::vector<bool> no_params;
  const netlist::Netlist lut_netlist =
      netlist::dead_code_eliminate(mapped.specialize(no_params)).netlist;
  report.luts = netlist::stats(lut_netlist).luts;
  report.map_seconds = stage.seconds();
  stage.restart();

  const auto problem = place::PlacementProblem::from_netlist(lut_netlist);
  auto arch = fpga::ArchParams::sized_for(problem.num_logic_blocks(),
                                          problem.num_pads());
  place::PlaceOptions popt;
  popt.effort = 0.25;
  const auto placement = place::place(problem, arch, popt);
  report.place_seconds = stage.seconds();
  stage.restart();

  arch.channel_width = 14;
  const fpga::RRGraph graph(arch);
  route::RouteOptions ropt;
  ropt.max_iterations = 30;
  (void)route::route(graph, problem, placement, ropt);
  report.route_seconds = stage.seconds();
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("== §II-A: VCGRA tool flow vs standard FPGA tool flow ==\n");
  std::printf("Application: 4-tap dot product (4 mul + 3 add)\n\n");

  // --- VCGRA flow (PE granularity, paper format) ------------------------------
  overlay::OverlayArch arch;  // 4x4, FloPoCo (6,26)
  const overlay::Dfg dfg = overlay::make_dot_product_kernel(kCoefficients);
  // Warm-up + measured runs.
  overlay::Compiled compiled = overlay::compile(dfg, arch);
  common::WallTimer timer;
  constexpr int kRuns = 50;
  for (int i = 0; i < kRuns; ++i) compiled = overlay::compile(dfg, arch, 1 + i);
  const double vcgra_seconds = timer.seconds() / kRuns;

  // --- FPGA flow (LUT granularity, reduced format — conservative) -------------
  const FpgaFlowReport fpga = run_fpga_flow(softfloat::FpFormat::half_like());

  common::AsciiTable table({"Flow", "Granularity", "Problem size", "Synthesis",
                            "Mapping", "Place", "Route", "Total"});
  table.add_row({"VCGRA", "PE",
                 common::strprintf("%d ops", compiled.report.pes_used),
                 common::human_seconds(compiled.report.synth_seconds),
                 common::human_seconds(compiled.report.map_seconds),
                 common::human_seconds(compiled.report.place_seconds),
                 common::human_seconds(compiled.report.route_seconds),
                 common::human_seconds(vcgra_seconds)});
  table.add_row({"FPGA (5,10 fmt)", "4-LUT",
                 common::strprintf("%zu LUTs", fpga.luts),
                 common::human_seconds(fpga.synth_seconds),
                 common::human_seconds(fpga.map_seconds),
                 common::human_seconds(fpga.place_seconds),
                 common::human_seconds(fpga.route_seconds),
                 common::human_seconds(fpga.total())});
  table.print();

  std::printf("\nSpeedup (VCGRA vs FPGA flow): %.0fx", fpga.total() / vcgra_seconds);
  std::printf(
      "  [conservative: the FPGA flow compiles the SMALLER (5,10) datapath;\n"
      "   at the paper's (6,26) format the gap widens several-fold further]\n");
  std::printf(
      "\nSpec-change turnaround: re-generating VCGRA settings for new\n"
      "coefficients costs one compile (%s) — the paper's headline benefit.\n\n",
      common::human_seconds(vcgra_seconds).c_str());

  // Micro-benchmarks of the VCGRA flow stages.
  benchmark::Initialize(&argc, argv);
  benchmark::RegisterBenchmark("vcgra_compile_dot4", [&](benchmark::State& state) {
    std::uint64_t seed = 0;
    for (auto _ : state) {
      benchmark::DoNotOptimize(overlay::compile(dfg, arch, ++seed));
    }
  });
  benchmark::RegisterBenchmark("vcgra_parse_kernel", [&](benchmark::State& state) {
    const std::string kernel = R"(
      input x0; input x1; param c0 = 0.5; param c1 = -0.25;
      t0 = mul(x0, c0); t1 = mul(x1, c1); y = add(t0, t1); output y;)";
    for (auto _ : state) {
      benchmark::DoNotOptimize(overlay::parse_kernel(kernel));
    }
  });
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
