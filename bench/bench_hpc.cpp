// HPC kernel suite on the overlay service — the paper-title claim
// ("... for High Performance Computing Applications") made measurable.
//
//   A. STREAM copy/scale/add/triad, AXPY, MAC dot reduction, GEMV and a
//      1D 3-point stencil compiled through OverlayService and streamed
//      through the cycle-level simulator; per kernel: FLOP/cycle at
//      initiation interval 1, pipeline-fill overhead, tool-flow and
//      modeled reconfiguration time. Every kernel is validated bit-exact
//      against its softfloat reference and within format tolerance of
//      the double-precision host reference.
//   B. The same suite across grid configurations (2x2 .. 8x8) and FP
//      formats (the paper's FloPoCo (6,26) vs half-like (5,10)) — the
//      fully parameterized VCGRA's whole point.
//   C. Tiled GEMM decomposed onto adder-tree dot kernels, all
//      (column, k-tile) jobs submitted concurrently; a second pass with
//      identical tiles shows the overlay cache absorbing every compile.
//
// Exits non-zero if any kernel fails either validation, so CI can run
// it as a smoke check.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <future>
#include <string>
#include <vector>

#include "vcgra/common/strings.hpp"
#include "vcgra/common/table.hpp"
#include "vcgra/common/timer.hpp"
#include "vcgra/hpc/bench.hpp"
#include "vcgra/softfloat/fpformat.hpp"

using namespace vcgra;

namespace {

/// Machine-readable dump for CI's perf trajectory: one record per suite
/// kernel plus the GEMM passes, written as plain JSON (no dependency).
std::string kernels_json(const std::vector<hpc::KernelReport>& reports) {
  std::string json;
  for (const auto& report : reports) {
    if (!json.empty()) json += ",\n";
    json += common::strprintf(
        "    {\"name\": \"%s\", \"samples\": %zu, \"pes\": %d, "
        "\"cycles\": %llu, \"flop_per_cycle\": %.6f, "
        "\"exec_seconds\": %.9f, \"elements_per_second\": %.1f, "
        "\"compile_seconds\": %.9f, \"bit_exact\": %s, "
        "\"plan_executed\": %s}",
        report.name.c_str(), report.samples, report.pes_used,
        static_cast<unsigned long long>(report.cycles), report.flop_per_cycle,
        report.exec_seconds, report.elements_per_second,
        report.compile_seconds, report.bit_exact ? "true" : "false",
        report.plan_executed ? "true" : "false");
  }
  return json;
}

std::string gemm_json(const char* pass, const hpc::GemmReport& report) {
  // batched_jobs / max_batch_size record the raw-bits batched boundary:
  // tiles that rode a fused plan sweep (every tile already uses u64 job
  // I/O, so the host-side column fold never decodes to doubles).
  return common::strprintf(
      "    {\"pass\": \"%s\", \"jobs\": %d, \"cycles\": %llu, "
      "\"flop_per_cycle\": %.6f, \"cache_hits\": %llu, "
      "\"structure_hits\": %llu, \"batched_jobs\": %llu, "
      "\"max_batch_size\": %d, \"compile_seconds\": %.9f, "
      "\"bit_exact\": %s}",
      pass, report.jobs, static_cast<unsigned long long>(report.cycles),
      report.flop_per_cycle, static_cast<unsigned long long>(report.cache_hits),
      static_cast<unsigned long long>(report.structure_hits),
      static_cast<unsigned long long>(report.batched_jobs),
      report.max_batch_size, report.compile_seconds,
      report.bit_exact ? "true" : "false");
}

}  // namespace

int main(int argc, char** argv) {
  // `--json [path]` dumps machine-readable results (default
  // BENCH_exec.json) so CI can record a performance trajectory.
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json_path = (i + 1 < argc && argv[i + 1][0] != '-') ? argv[++i]
                                                          : "BENCH_exec.json";
    } else {
      std::fprintf(stderr, "usage: %s [--json [path]]\n", argv[0]);
      return 2;
    }
  }

  std::printf("== HPC kernel suite on the VCGRA overlay service ==\n");
  bool ok = true;
  constexpr std::size_t kN = 4096;
  std::vector<hpc::KernelReport> suite_reports;
  std::string gemm_records;     // filled by section C
  std::string batched_record;   // filled by section D

  // --- A: the suite on the paper's configuration -----------------------------
  {
    std::printf("\n[A] Standard suite, 4x4 grid, FloPoCo (6,26), n=%zu\n", kN);
    hpc::HpcBenchOptions options;
    options.service.threads = 2;
    hpc::HpcBench bench(options);
    const auto reports = bench.run_suite(kN);
    suite_reports = reports;
    std::printf("%s", hpc::HpcBench::report_table(reports).c_str());
    for (const auto& report : reports) {
      if (!report.passed()) {
        std::printf("  FAIL: %s (bit_exact=%d rel_err=%.3g tol=%.3g)\n",
                    report.name.c_str(), report.bit_exact ? 1 : 0,
                    report.max_rel_err, report.tolerance);
        ok = false;
      }
    }
    if (ok) std::printf("  PASS: all kernels bit-exact and within tolerance\n");
  }

  // --- B: grid / format parameterization -------------------------------------
  {
    std::printf("\n[B] Triad + GEMV + dot across grid sizes and FP formats\n");
    struct Config {
      int rows, cols;
      softfloat::FpFormat format;
      const char* label;
    };
    const Config configs[] = {
        {2, 2, softfloat::FpFormat::paper(), "2x2 fp(6,26)"},
        {4, 4, softfloat::FpFormat::paper(), "4x4 fp(6,26)"},
        {6, 6, softfloat::FpFormat::paper(), "6x6 fp(6,26)"},
        {8, 8, softfloat::FpFormat::paper(), "8x8 fp(6,26)"},
        {4, 4, softfloat::FpFormat::half_like(), "4x4 fp(5,10)"},
    };
    common::AsciiTable table({"Grid", "Kernel", "Taps/PEs", "Cycles",
                              "FLOP/cycle", "Bit-exact"});
    std::vector<std::string> sweep_notes;
    for (const Config& config : configs) {
      hpc::HpcBenchOptions options;
      options.arch.rows = config.rows;
      options.arch.cols = config.cols;
      options.arch.format = config.format;
      options.service.threads = 2;
      hpc::HpcBench bench(options);

      // GEMV tap width scales with the grid: 2*taps - 1 PEs must fit.
      const int taps = (options.arch.num_pes() + 1) / 2;
      const hpc::HpcKernel kernels[] = {
          hpc::make_stream_triad(kN, 3.0, 7),
          hpc::make_gemv(kN, taps, 7),
          hpc::make_dot(kN, 16, 7),
      };
      for (const auto& kernel : kernels) {
        const auto report = bench.run(kernel);
        if (!report.passed()) ok = false;
        table.add_row(
            {config.label, report.name,
             common::strprintf("%d", report.pes_used),
             common::strprintf("%llu",
                               static_cast<unsigned long long>(report.cycles)),
             common::strprintf("%.3f", report.flop_per_cycle),
             report.passed() ? "yes" : "NO"});
      }

      // Alpha sweep: the triad shape with new coefficients each round —
      // the DCS fast path. Every sweep job must reuse the structure the
      // first triad run placed & routed (no new tool flow).
      for (const double alpha : {1.5, 2.25, 4.5}) {
        const auto report = bench.run(hpc::make_stream_triad(kN, alpha, 7));
        if (!report.passed()) ok = false;
        if (!report.structure_hit || report.compile_seconds != 0) {
          std::printf("  FAIL: %s alpha=%.2f re-ran place & route\n",
                      config.label, alpha);
          ok = false;
        }
      }

      // Alpha *renaming*: the same triad shape under foreign signal
      // names maps to the identical structure key (canonicalization
      // alpha-renames), so even a client spelling its kernels
      // differently rides the resident structure. Submitted directly —
      // the harness's references are keyed by the original names.
      {
        runtime::JobRequest renamed;
        renamed.arch = bench.options().arch;
        renamed.seed = 1;  // the placer seed bench.run() compiled under
        renamed.kernel_text =
            "input src_base;\ninput src_scaled;\nparam gain = 1.5;\n"
            "scaled = mul(src_scaled, gain);\nsum = add(src_base, scaled);\n"
            "output sum;\n";
        for (const char* name : {"src_base", "src_scaled"}) {
          renamed.inputs[name] = std::vector<double>(64, 0.5);
        }
        const runtime::JobResult result = bench.service().run(std::move(renamed));
        if (!result.structure_hit || result.compile_seconds != 0) {
          std::printf("  FAIL: %s alpha-renamed triad re-ran place & route\n",
                      config.label);
          ok = false;
        }
      }

      const runtime::CacheStats cache = bench.service().stats().cache;
      sweep_notes.push_back(common::strprintf(
          "  %-13s structure-cache hit rate %.0f%% (%llu place&route for %llu "
          "jobs, renamed-kernel dedup included)",
          config.label, 100.0 * cache.structure_hit_rate(),
          static_cast<unsigned long long>(cache.structure_misses),
          static_cast<unsigned long long>(cache.hits + cache.misses)));
    }
    table.print();
    for (const std::string& note : sweep_notes) std::printf("%s\n", note.c_str());
    std::printf("  Wider grids widen the GEMV adder tree (more taps per pass),\n"
                "  the format swap re-parameterizes every PE datapath, and the\n"
                "  alpha sweep (values *and* names) respecializes the triad\n"
                "  structure in place.\n");
  }

  // --- C: tiled GEMM + overlay-cache reuse -----------------------------------
  {
    std::printf("\n[C] Tiled GEMM on adder-tree dot kernels (4x4 grid)\n");
    hpc::HpcBenchOptions options;
    options.service.threads = 4;
    hpc::HpcBench bench(options);
    constexpr int kM = 64, kCols = 8, kK = 24, kTile = 6;

    const auto cold = bench.run_gemm(kM, kCols, kK, kTile);
    const auto warm = bench.run_gemm(kM, kCols, kK, kTile);
    common::AsciiTable table({"Pass", "Jobs", "Cache hits", "Struct hits",
                              "Cycles", "FLOP/cycle", "Compile", "Bit-exact"});
    for (const auto* pass : {&cold, &warm}) {
      table.add_row(
          {pass == &cold ? "cold" : "warm", common::strprintf("%d", pass->jobs),
           common::strprintf("%llu",
                             static_cast<unsigned long long>(pass->cache_hits)),
           common::strprintf(
               "%llu", static_cast<unsigned long long>(pass->structure_hits)),
           common::strprintf("%llu",
                             static_cast<unsigned long long>(pass->cycles)),
           common::strprintf("%.3f", pass->flop_per_cycle),
           common::human_seconds(pass->compile_seconds),
           pass->passed() ? "yes" : "NO"});
    }
    table.print();
    const runtime::ServiceStats service_stats = bench.service().stats();
    std::printf("  Tiles share one dot-tree structure per tap width: the cold\n"
                "  pass places & routes once and respecializes per tile; the\n"
                "  warm pass reuses the full specializations outright. Every\n"
                "  tile carries distinct coefficients (its own specialization),\n"
                "  so same-config batch fusion stays idle here by design:\n"
                "  %llu fused batches over %d tile jobs (see [D] for the\n"
                "  fused regime).\n",
                static_cast<unsigned long long>(service_stats.fused_batches),
                cold.jobs + warm.jobs);
    if (!cold.passed() || !warm.passed()) {
      std::printf("  FAIL: GEMM validation (cold rel_err=%.3g warm rel_err=%.3g)\n",
                  cold.max_rel_err, warm.max_rel_err);
      ok = false;
    }
    if (warm.cache_hits != static_cast<std::uint64_t>(warm.jobs)) {
      std::printf("  FAIL: warm pass expected %d cache hits, got %llu\n",
                  warm.jobs,
                  static_cast<unsigned long long>(warm.cache_hits));
      ok = false;
    }
    std::printf("  C[%dx%d] = A[%dx%d] * B[%dx%d]: %d tile kernels, k-tile=%d\n",
                kM, kCols, kM, kK, kK, kCols, cold.jobs, kTile);
    gemm_records = gemm_json("cold", cold) + ",\n" + gemm_json("warm", warm);
  }

  // --- D: fused batched-boundary waves (report-only) --------------------------
  // The regime GEMM's per-tile coefficients exclude: many small jobs of
  // ONE specialization (the same stencil over many row blocks), raw u64
  // job boundary, fused into plan sweeps by the service drain. Numbers
  // feed the JSON trajectory; bench_runtime gate [H] owns the pass/fail.
  {
    std::printf("\n[D] Fused batched-boundary waves (one dot kernel, raw-bits "
                "boundary)\n");
    constexpr int kJobs = 64;
    constexpr std::size_t kBlock = 64;
    hpc::HpcBenchOptions options;
    options.service.threads = 2;
    hpc::HpcBench bench(options);
    const hpc::HpcKernel kernel = hpc::make_dot(kBlock, 16, 7);
    const softfloat::FpFormat format = bench.options().arch.format;

    common::WallTimer timer;
    std::vector<std::future<runtime::JobResult>> futures;
    for (int j = 0; j < kJobs; ++j) {
      runtime::JobRequest request;
      request.kernel_text = kernel.kernel_text;
      request.arch = bench.options().arch;
      request.params = kernel.params;
      for (const auto& [name, stream] : kernel.inputs) {
        std::vector<std::uint64_t>& bits = request.input_bits[name];
        bits.reserve(stream.size());
        for (const double v : stream) {
          bits.push_back(
              softfloat::FpValue::from_double(format, v + 0.125 * j).bits());
        }
      }
      request.raw_output = true;
      futures.push_back(bench.service().submit(std::move(request)));
    }
    int max_batch = 1;
    std::uint64_t batched = 0;
    bool raw_ok = true;
    for (auto& future : futures) {
      const runtime::JobResult result = future.get();
      max_batch = std::max(max_batch, result.batch_size);
      if (result.batch_size > 1) ++batched;
      if (result.run.bit_outputs.empty() || !result.run.outputs.empty()) {
        raw_ok = false;
      }
    }
    const double wave_seconds = timer.seconds();
    const runtime::ServiceStats stats = bench.service().stats();
    if (!raw_ok) {
      std::printf("  FAIL: raw-bits jobs materialized double outputs\n");
      ok = false;
    }
    std::printf("  %d same-config jobs (%zu samples each): %llu fused batches "
                "carried %llu jobs, largest batch %d, wave %s\n",
                kJobs, kBlock,
                static_cast<unsigned long long>(stats.fused_batches),
                static_cast<unsigned long long>(stats.batched_jobs), max_batch,
                common::human_seconds(wave_seconds).c_str());
    batched_record = common::strprintf(
        "{\"jobs\": %d, \"samples\": %zu, \"fused_batches\": %llu, "
        "\"batched_jobs\": %llu, \"max_batch_size\": %d, "
        "\"wave_seconds\": %.9f, \"raw_boundary\": %s}",
        kJobs, kBlock, static_cast<unsigned long long>(stats.fused_batches),
        static_cast<unsigned long long>(stats.batched_jobs), max_batch,
        wave_seconds, raw_ok ? "true" : "false");
  }

  // --- E: kernel-graph GEMM + streaming session (report-only) -----------------
  // The zero-decode composition paths: the same tiled GEMM as ONE DAG
  // per run (fabric fold stages over raw-bits edges replace the host
  // glue) and a MAC kernel streamed through a Session in chunks.
  // Numbers feed the JSON trajectory; bench_runtime gate [I] owns the
  // graph-vs-per-job pass/fail.
  std::string graph_record;
  std::string session_record;
  {
    std::printf("\n[E] GEMM as one kernel graph per run; streaming session "
                "chunks\n");
    constexpr int kM = 64, kCols = 8, kK = 24, kTile = 6;
    hpc::HpcBenchOptions options;
    options.service.threads = 2;
    hpc::HpcBench bench(options);
    // Warm both paths (places & routes the shared tile/fold structures),
    // then compare wall-clock medians of 3 runs each.
    (void)bench.run_gemm(kM, kCols, kK, kTile);
    (void)bench.run_gemm_graph(kM, kCols, kK, kTile);
    std::vector<double> per_job_seconds, graph_seconds;
    hpc::GemmReport per_job;
    hpc::GemmGraphReport graph;
    for (int i = 0; i < 3; ++i) {
      common::WallTimer per_job_timer;
      per_job = bench.run_gemm(kM, kCols, kK, kTile);
      per_job_seconds.push_back(per_job_timer.seconds());
      common::WallTimer graph_timer;
      graph = bench.run_gemm_graph(kM, kCols, kK, kTile);
      graph_seconds.push_back(graph_timer.seconds());
    }
    std::sort(per_job_seconds.begin(), per_job_seconds.end());
    std::sort(graph_seconds.begin(), graph_seconds.end());
    const double per_job_median = per_job_seconds[1];
    const double graph_median = graph_seconds[1];
    const double speedup =
        graph_median > 0 ? per_job_median / graph_median : 0.0;
    if (!per_job.passed() || !graph.passed()) {
      std::printf("  FAIL: GEMM validation (per-job bit_exact=%d graph "
                  "bit_exact=%d)\n",
                  per_job.passed() ? 1 : 0, graph.passed() ? 1 : 0);
      ok = false;
    }
    std::printf("  %d tile jobs + host fold -> %d DAG stages (%d fused "
                "sweeps, %d raw edges, %d converted)\n",
                per_job.jobs, graph.stages, graph.fused_groups,
                graph.edges_raw, graph.edges_converted);
    std::printf("  per-job run %s  graph run %s  speedup %.1fx (medians of "
                "3, both bit-exact)\n",
                common::human_seconds(per_job_median).c_str(),
                common::human_seconds(graph_median).c_str(), speedup);
    graph_record = common::strprintf(
        "{\"stages\": %d, \"per_job_jobs\": %d, \"fused_groups\": %d, "
        "\"edges_raw\": %d, \"edges_converted\": %d, \"cycles\": %llu, "
        "\"flop_per_cycle\": %.6f, \"per_job_seconds\": %.9f, "
        "\"graph_seconds\": %.9f, \"speedup\": %.3f, \"bit_exact\": %s}",
        graph.stages, per_job.jobs, graph.fused_groups, graph.edges_raw,
        graph.edges_converted, static_cast<unsigned long long>(graph.cycles),
        graph.flop_per_cycle, per_job_median, graph_median, speedup,
        (per_job.passed() && graph.passed()) ? "true" : "false");

    // Streaming session: an 8-deep MAC over a long stream, fed in
    // chunks. The chunking must be free (session vs one-shot) and the
    // session must beat re-submitting every chunk as its own job.
    const std::string mac_text =
        "input x;\nparam c = 0.8125;\ny = mac(x, c, 8);\noutput y;\n";
    constexpr std::size_t kChunk = 256;
    constexpr std::size_t kChunks = 64;
    const softfloat::FpFormat format = bench.options().arch.format;
    std::vector<std::uint64_t> stream_bits;
    stream_bits.reserve(kChunk * kChunks);
    for (std::size_t i = 0; i < kChunk * kChunks; ++i) {
      const double v = (static_cast<double>(i % 2048) - 1024.0) / 512.0;
      stream_bits.push_back(softfloat::FpValue::from_double(format, v).bits());
    }

    runtime::JobRequest one_shot;
    one_shot.kernel_text = mac_text;
    one_shot.arch = bench.options().arch;
    one_shot.input_bits["x"] = stream_bits;
    one_shot.raw_output = true;
    (void)bench.service().run(one_shot);  // warm
    common::WallTimer one_shot_timer;
    const runtime::JobResult one_shot_result = bench.service().run(one_shot);
    const double one_shot_seconds = one_shot_timer.seconds();

    runtime::SessionRequest session_request;
    session_request.kernel_text = mac_text;
    session_request.arch = bench.options().arch;
    session_request.raw_output = true;
    auto session = bench.service().open_session(session_request);
    std::vector<std::uint64_t> concatenated;
    concatenated.reserve(stream_bits.size() / 8);
    common::WallTimer session_timer;
    for (std::size_t c = 0; c < kChunks; ++c) {
      std::map<std::string, std::vector<std::uint64_t>> chunk;
      chunk["x"].assign(stream_bits.begin() + c * kChunk,
                        stream_bits.begin() + (c + 1) * kChunk);
      const overlay::RunResult fed = session->feed_bits(chunk);
      const auto it = fed.bit_outputs.find("y");
      if (it != fed.bit_outputs.end()) {
        concatenated.insert(concatenated.end(), it->second.begin(),
                            it->second.end());
      }
    }
    const double session_seconds = session_timer.seconds();
    const bool chunking_free =
        concatenated == one_shot_result.run.bit_outputs.at("y");
    if (!chunking_free) {
      std::printf("  FAIL: chunked session output differs from one-shot\n");
      ok = false;
    }

    // What a client without sessions pays: every chunk re-enters the
    // queue as its own job (overhead probe; MAC state resets per job so
    // outputs are not comparable — the session differential above and
    // test_graph own bit-exactness).
    common::WallTimer jobs_timer;
    for (std::size_t c = 0; c < kChunks; ++c) {
      runtime::JobRequest request;
      request.kernel_text = mac_text;
      request.arch = bench.options().arch;
      request.input_bits["x"].assign(stream_bits.begin() + c * kChunk,
                                     stream_bits.begin() + (c + 1) * kChunk);
      request.raw_output = true;
      (void)bench.service().run(request);
    }
    const double per_chunk_job_seconds = jobs_timer.seconds();
    const double session_speedup =
        session_seconds > 0 ? per_chunk_job_seconds / session_seconds : 0.0;
    std::printf("  session: %zu chunks x %zu samples  one-shot %s  chunked "
                "%s  per-chunk jobs %s (%.1fx vs session)\n",
                kChunks, kChunk, common::human_seconds(one_shot_seconds).c_str(),
                common::human_seconds(session_seconds).c_str(),
                common::human_seconds(per_chunk_job_seconds).c_str(),
                session_speedup);
    session_record = common::strprintf(
        "{\"chunks\": %zu, \"chunk_samples\": %zu, \"one_shot_seconds\": %.9f, "
        "\"session_seconds\": %.9f, \"per_chunk_job_seconds\": %.9f, "
        "\"session_speedup\": %.3f, \"chunking_bit_identical\": %s}",
        kChunks, kChunk, one_shot_seconds, session_seconds,
        per_chunk_job_seconds, session_speedup,
        chunking_free ? "true" : "false");
  }

  if (!json_path.empty()) {
    FILE* out = std::fopen(json_path.c_str(), "w");
    if (!out) {
      std::fprintf(stderr, "bench_hpc: cannot write %s\n", json_path.c_str());
      ok = false;
    } else {
      std::fprintf(out,
                   "{\n  \"bench\": \"bench_hpc\",\n  \"n\": %zu,\n"
                   "  \"kernels\": [\n%s\n  ],\n  \"gemm\": [\n%s\n  ],\n"
                   "  \"batched\": %s,\n  \"graph\": %s,\n"
                   "  \"session\": %s\n}\n",
                   kN, kernels_json(suite_reports).c_str(),
                   gemm_records.c_str(), batched_record.c_str(),
                   graph_record.c_str(), session_record.c_str());
      std::fclose(out);
      std::printf("\n  wrote %s\n", json_path.c_str());
    }
  }

  std::printf("\n%s\n", ok ? "bench_hpc: PASS" : "bench_hpc: FAIL");
  return ok ? 0 : 1;
}
