// §V reconfiguration-overhead reproduction: the ~251 ms per-PE estimate
// and its amortization over an image stream.
//
// Two estimates are printed:
//   * with the paper's published PE composition (526 TLUTs + 568 TCONs),
//     which reproduces 251 ms exactly under the HWICAP frame model;
//   * with the composition our own TCONMAP run produces for the same PE,
//     demonstrating the model end-to-end (PPC built from the mapped
//     netlist, frames counted per tunable resource).
#include <cstdio>

#include "vcgra/common/strings.hpp"
#include "vcgra/common/table.hpp"
#include "vcgra/common/timer.hpp"
#include "vcgra/fpga/frames.hpp"
#include "vcgra/vcgra/backend.hpp"
#include "vcgra/vcgra/dfg.hpp"
#include "vcgra/vcgra/simulator.hpp"

using namespace vcgra;

int main() {
  std::printf("== §V: reconfiguration overhead of the parameterized VCGRA ==\n\n");
  const fpga::FrameModel model;

  // --- paper composition -----------------------------------------------------
  const auto paper_cost = fpga::estimate_reconfig(model, 526, 568, 526 * 16 + 568 * 4);
  std::printf("Paper PE composition (526 TLUTs, 568 TCONs):\n  %s\n",
              paper_cost.to_string().c_str());
  std::printf("  -> paper's §V estimate: 251 ms per PE (HWICAP)\n\n");

  // --- our mapped PE -----------------------------------------------------------
  common::WallTimer timer;
  overlay::OverlayArch arch;  // paper format (6,26), 4x4
  const overlay::ParameterizedBackend backend(arch);
  const auto mapped_stats = backend.mapped_pe().stats();
  const auto ppc_stats = backend.ppc().stats();
  std::printf("Our TCONMAP PE composition (built in %.1f s):\n", timer.seconds());
  std::printf("  mapped: %s\n", mapped_stats.to_string().c_str());
  std::printf("  PPC: %zu tunable bits, %zu static bits, %zu frames, %zu BDD nodes\n",
              ppc_stats.tunable_bits, ppc_stats.static_bits, ppc_stats.frames,
              ppc_stats.bdd_nodes);
  const auto our_cost = backend.per_pe_cost();
  std::printf("  per-PE respecialization: %s\n\n", our_cost.to_string().c_str());

  common::AsciiTable table({"PE composition", "Frames", "HWICAP", "MiCAP"});
  table.add_row({"Paper (526 TLUT + 568 TCON)",
                 common::strprintf("%zu", paper_cost.frames),
                 common::human_seconds(paper_cost.hwicap_seconds),
                 common::human_seconds(paper_cost.micap_seconds)});
  table.add_row({common::strprintf("Ours (%zu TLUT + %zu TCON)", mapped_stats.tluts,
                                   mapped_stats.tcons),
                 common::strprintf("%zu", our_cost.frames),
                 common::human_seconds(our_cost.hwicap_seconds),
                 common::human_seconds(our_cost.micap_seconds)});
  table.print();

  // --- partial reconfiguration: coefficient change only ----------------------
  std::printf("\nDirty-frame cost of a coefficient change (ours, SCG frame diff):\n");
  const auto a = overlay::compile(overlay::make_streaming_mac_kernel(0.125, 25), arch);
  const auto b = overlay::compile(overlay::make_streaming_mac_kernel(-0.85, 25), arch);
  const auto delta = backend.reconfigure_cost(a.settings, b.settings);
  std::printf("  %s\n", delta.to_string().c_str());

  // --- amortization over an image stream (paper's 1000-image example) --------
  std::printf("\nAmortization of one 16-PE grid respecialization over N images\n");
  std::printf("(256x256 image, full Fig. 5 pipeline: 1 denoise + 7 matched +\n");
  std::printf(" 4 texture filters, 16 parallel MAC lanes at 100 MHz):\n");
  const double grid_reconfig = 16.0 * paper_cost.hwicap_seconds;
  // Passes per filter = ceil(taps/16): 5x5 -> 2; 15x15 -> 15.
  const double passes = 2.0 + 7.0 * 15.0 + 4.0 * 15.0;
  const double image_seconds = 256.0 * 256.0 * passes / 100e6;
  common::AsciiTable amort({"Images/config", "Reconfig", "Compute", "Overhead"});
  for (const int images : {1, 10, 100, 1000}) {
    const double compute = image_seconds * images;
    amort.add_row({common::strprintf("%d", images),
                   common::human_seconds(grid_reconfig),
                   common::human_seconds(compute),
                   common::strprintf("%.1f%%", 100.0 * grid_reconfig /
                                                   (grid_reconfig + compute))});
  }
  amort.print();
  std::printf(
      "\nAt 1000 images per coefficient set (the paper's example), the\n"
      "reconfiguration overhead is negligible; at 1 image it dominates —\n"
      "matching §II-C: cycle-by-cycle context switching is out of scope.\n");
  return 0;
}
