// Fig. 5 reproduction: the retinal-vessel-segmentation pipeline on the
// VCGRA overlay — per-filter workload, cycle model, segmentation quality
// against ground truth, and the reconfiguration amortization of §V.
#include <cstdio>

#include "vcgra/common/rng.hpp"
#include "vcgra/common/strings.hpp"
#include "vcgra/common/table.hpp"
#include "vcgra/common/timer.hpp"
#include "vcgra/vcgra/arch.hpp"
#include "vcgra/vision/filters.hpp"
#include "vcgra/vision/metrics.hpp"
#include "vcgra/vision/pipeline.hpp"
#include "vcgra/vision/synthetic.hpp"

using namespace vcgra;

int main() {
  std::printf("== Fig. 5: retinal vessel segmentation on the VCGRA ==\n\n");
  common::WallTimer timer;

  common::Rng rng(2026);
  vision::FundusParams fparams;  // 256x256 synthetic fundus
  const vision::FundusImage fundus = vision::generate_fundus(fparams, rng);

  overlay::OverlayArch arch;  // 4x4 grid of MAC PEs, FloPoCo (6,26)
  vision::PipelineParams params;

  // --- per-filter workload table ----------------------------------------------
  std::printf("Hardware modules (kernel sweep on %s):\n", arch.to_string().c_str());
  common::AsciiTable filters(
      {"Filter", "Kernel", "Taps", "MACs/pixel", "Passes", "Cycles (256x256)"});
  struct Entry {
    const char* name;
    vision::Kernel kernel;
  };
  std::vector<Entry> entries;
  entries.push_back({"Denoise (small)", vision::gaussian_kernel(5, 1.0)});
  entries.push_back({"Denoise (large)", vision::gaussian_kernel(9, 2.0)});
  entries.push_back({"Matched filter (x7)",
                     vision::matched_filter_kernel(15, 2.0, 9.0, 0.0)});
  entries.push_back({"Texture filter (x4)",
                     vision::matched_filter_kernel(15, 2.5, 11.0, 90.0)});
  vision::Image probe(256, 256, 0.5f);
  for (const auto& entry : entries) {
    const auto cost = vision::convolve_overlay(probe, entry.kernel, arch);
    filters.add_row({entry.name,
                     common::strprintf("%dx%d", entry.kernel.size, entry.kernel.size),
                     common::strprintf("%d", entry.kernel.taps()),
                     common::strprintf("%d", entry.kernel.taps()),
                     common::strprintf("%d", cost.passes),
                     common::human_count(static_cast<double>(cost.cycles))});
  }
  filters.print();

  // --- full pipeline on the overlay engine -------------------------------------
  std::printf("\nRunning the full pipeline (overlay engine, bit-exact FloPoCo)...\n");
  const vision::PipelineResult result =
      vision::run_pipeline_overlay(fundus.rgb, fundus.field_of_view, params, arch);
  const auto metrics = vision::evaluate_segmentation(
      result.stages.segmented, fundus.ground_truth, fundus.field_of_view);

  // Baseline: Otsu global threshold on the inverted green channel.
  const vision::Image green = fundus.rgb.channel(1);
  vision::Image inverted(green.width(), green.height());
  for (std::size_t i = 0; i < green.data().size(); ++i) {
    inverted.data()[i] = 1.0f - green.data()[i];
  }
  const vision::Mask baseline =
      vision::threshold(inverted, vision::otsu_level(inverted));
  const auto baseline_metrics = vision::evaluate_segmentation(
      baseline, fundus.ground_truth, fundus.field_of_view);

  std::printf("\nSegmentation quality (synthetic fundus, ground truth known):\n");
  common::AsciiTable quality(
      {"Method", "Sensitivity", "Specificity", "Accuracy", "Dice"});
  quality.add_row({"VCGRA matched-filter pipeline",
                   common::strprintf("%.3f", metrics.sensitivity()),
                   common::strprintf("%.3f", metrics.specificity()),
                   common::strprintf("%.3f", metrics.accuracy()),
                   common::strprintf("%.3f", metrics.dice())});
  quality.add_row({"Global threshold (Otsu) baseline",
                   common::strprintf("%.3f", baseline_metrics.sensitivity()),
                   common::strprintf("%.3f", baseline_metrics.specificity()),
                   common::strprintf("%.3f", baseline_metrics.accuracy()),
                   common::strprintf("%.3f", baseline_metrics.dice())});
  quality.print();

  // --- workload + reconfiguration amortization ---------------------------------
  std::printf("\nPipeline workload (per image): %s MACs, %s grid cycles, "
              "%d PE reconfigurations\n",
              common::human_count(static_cast<double>(result.cost.macs)).c_str(),
              common::human_count(static_cast<double>(result.cost.cycles)).c_str(),
              result.cost.reconfigurations);
  const double cycle_seconds = 1.0 / 100e6;  // 100 MHz overlay clock
  const double compute_seconds =
      static_cast<double>(result.cost.cycles) * cycle_seconds;
  const double reconfig_seconds = result.cost.reconfigurations * 0.251 /
                                  static_cast<double>(arch.num_pes());
  std::printf("At 100 MHz: compute %s/image; reconfig %s if coefficients "
              "change per image\n",
              common::human_seconds(compute_seconds).c_str(),
              common::human_seconds(reconfig_seconds).c_str());
  const double micap_ratio = 85.72 / 251.38;  // MiCAP vs HWICAP per frame
  common::AsciiTable amort(
      {"Images per coefficient set", "Overhead (HWICAP)", "Overhead (MiCAP)"});
  for (const int images : {1, 10, 100, 1000}) {
    const double hw =
        reconfig_seconds / (reconfig_seconds + compute_seconds * images);
    const double mi = reconfig_seconds * micap_ratio /
                      (reconfig_seconds * micap_ratio + compute_seconds * images);
    amort.add_row({common::strprintf("%d", images),
                   common::strprintf("%.2f%%", 100.0 * hw),
                   common::strprintf("%.2f%%", 100.0 * mi)});
  }
  amort.print();
  std::printf(
      "\nPaper §V: the denoise and texture coefficients change rarely (user\n"
      "tunable); the matched-filter bank is static. The table charges ALL\n"
      "coefficient loads to reconfiguration — a worst case. On a grid sized\n"
      "to keep each kernel resident (16x16 PEs, matching the paper's 16x16\n"
      "kernels), per-image reloads disappear and only per-set changes\n"
      "remain, which 1000-image streams amortize away (§V).\n");
  std::printf("\nTotal bench time: %.1f s\n", timer.seconds());
  return 0;
}
