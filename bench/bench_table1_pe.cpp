// Table I reproduction: resource utilization and PaR results of a single
// MAC processing element (FloPoCo format we=6, wf=26).
//
//   Conventional row — the same overlay structure realized without
//   parameterization (TCONs as LUT muxes, TLUT parameter pins as signal
//   pins), placed and routed on the 4-LUT island FPGA.
//   Fully parameterized row — TCONMAP mapping; the PaR instance is the
//   specialized design (TCONs dissolved into routing, TLUT configs bound)
//   exactly as DCS would configure the fabric for one coefficient.
//
// Absolute numbers differ from the paper (different synthesis, bigger
// ripple datapaths); the paper's *shape* — fewer LUTs, several hundred
// TCONs moved into routing, no channel-width penalty, lower wirelength —
// is the reproduction target (see EXPERIMENTS.md).
#include <cstdio>

#include "vcgra/common/strings.hpp"
#include "vcgra/common/table.hpp"
#include "vcgra/common/timer.hpp"
#include "vcgra/netlist/passes.hpp"
#include "vcgra/place/placer.hpp"
#include "vcgra/route/router.hpp"
#include "vcgra/softfloat/fpcircuits.hpp"
#include "vcgra/techmap/conventional.hpp"
#include "vcgra/techmap/mapper.hpp"

using namespace vcgra;

namespace {

struct ParResult {
  std::size_t wirelength = 0;
  int min_channel_width = -1;
};

ParResult place_and_route(const netlist::Netlist& design, std::uint64_t seed) {
  const auto problem = place::PlacementProblem::from_netlist(design);
  auto arch = fpga::ArchParams::sized_for(problem.num_logic_blocks(),
                                          problem.num_pads());
  place::PlaceOptions popt;
  popt.seed = seed;
  popt.effort = 0.25;
  const auto placement = place::place(problem, arch, popt);

  route::RouteOptions ropt;
  ropt.max_iterations = 30;
  ropt.stall_iterations = 6;
  const auto min_cw =
      route::find_min_channel_width(arch, problem, placement, 5, 16, ropt);

  ParResult result;
  result.min_channel_width = min_cw.channel_width;
  result.wirelength = min_cw.at_min.wirelength;
  if (min_cw.channel_width < 0) {
    // Fall back to a wide channel for the wirelength metric.
    arch.channel_width = 20;
    const fpga::RRGraph graph(arch);
    const auto routed = route::route(graph, problem, placement, ropt);
    result.wirelength = routed.wirelength;
  }
  return result;
}

}  // namespace

int main() {
  common::WallTimer timer;
  std::printf("== Table I: resource utilization and PaR results of a PE ==\n");
  std::printf("PE: floating-point MAC, FloPoCo format (we=6, wf=26), no DSPs\n\n");

  const auto format = softfloat::FpFormat::paper();
  softfloat::MacPe pe =
      softfloat::build_mac_pe(format, softfloat::PeStyle::kParameterized, 16);
  const netlist::Netlist source = netlist::clean(pe.netlist).netlist;
  std::printf("[%6.1fs] synthesized PE: %s\n", timer.seconds(),
              netlist::stats(source).to_string().c_str());

  // --- fully parameterized flow (TCONMAP) -----------------------------------
  const techmap::MappedNetlist mapped = techmap::tconmap(source, 4);
  const auto pstats = mapped.stats();
  std::printf("[%6.1fs] TCONMAP: %s\n", timer.seconds(), pstats.to_string().c_str());

  // Specialized instance for PaR (one representative coefficient).
  std::vector<bool> params(source.params().size(), false);
  const auto coeff = softfloat::FpValue::from_double(format, 0.7315);
  for (int i = 0; i < format.total_bits(); ++i) {
    params[static_cast<std::size_t>(i)] = (coeff.bits() >> i) & 1;
  }
  params[static_cast<std::size_t>(format.total_bits()) + 4] = true;  // count=16
  const netlist::Netlist specialized =
      netlist::dead_code_eliminate(mapped.specialize(params)).netlist;
  const ParResult par_param = place_and_route(specialized, 1);
  std::printf("[%6.1fs] parameterized PaR done (WL=%zu CW=%d)\n", timer.seconds(),
              par_param.wirelength, par_param.min_channel_width);

  // --- conventional flow -----------------------------------------------------
  const netlist::Netlist conventional = techmap::realize_conventional(mapped, 4);
  const auto cstats = netlist::stats(conventional);
  std::printf("[%6.1fs] conventional realization: %s\n", timer.seconds(),
              cstats.to_string().c_str());
  const ParResult par_conv = place_and_route(conventional, 1);
  std::printf("[%6.1fs] conventional PaR done (WL=%zu CW=%d)\n\n", timer.seconds(),
              par_conv.wirelength, par_conv.min_channel_width);

  common::AsciiTable table(
      {"VCGRA", "LUTs (TLUTs)", "TCONs", "Logic depth", "WL", "CW"});
  table.add_row({"Conventional", common::strprintf("%zu (0)", cstats.luts), "0",
                 common::strprintf("%d", cstats.depth),
                 common::strprintf("%zu", par_conv.wirelength),
                 common::strprintf("%d", par_conv.min_channel_width)});
  table.add_row({"Fully Parameterized",
                 common::strprintf("%zu (%zu)", pstats.total_luts(), pstats.tluts),
                 common::strprintf("%zu", pstats.tcons),
                 common::strprintf("%d", pstats.depth),
                 common::strprintf("%zu", par_param.wirelength),
                 common::strprintf("%d", par_param.min_channel_width)});
  table.print();

  const double lut_reduction =
      100.0 * (1.0 - static_cast<double>(pstats.total_luts()) /
                         static_cast<double>(cstats.luts));
  const double wl_reduction =
      100.0 * (1.0 - static_cast<double>(par_param.wirelength) /
                         static_cast<double>(par_conv.wirelength));
  std::printf(
      "\nLUT reduction: %.1f%% (paper: ~30%%) | TCONs: %zu (paper: 568)\n"
      "depth: %d -> %d (paper: 36 -> 33) | WL reduction: %.1f%% (paper: ~31%%)\n"
      "CW: %d vs %d (paper: 10 vs 10, no penalty)\n",
      lut_reduction, pstats.tcons, cstats.depth, pstats.depth, wl_reduction,
      par_conv.min_channel_width, par_param.min_channel_width);

  std::printf("\nPaper reference rows:\n");
  common::AsciiTable ref({"VCGRA", "LUTs (TLUTs)", "TCONs", "Logic depth", "WL", "CW"});
  ref.add_row({"Conventional (paper)", "2522 (0)", "0", "36", "27242", "10"});
  ref.add_row({"Fully Param. (paper)", "1802 (526)", "568", "33", "16824", "10"});
  ref.print();
  std::printf("\nTotal bench time: %.1f s\n", timer.seconds());
  return 0;
}
