// Overlay design-space exploration: grid size, PE repertoire and virtual
// channel tracks versus overlay cost and kernel fit.
//
// Build & run:  ./build/examples/overlay_explorer
#include <cstdio>

#include "vcgra/common/strings.hpp"
#include "vcgra/common/table.hpp"
#include "vcgra/vcgra/arch.hpp"
#include "vcgra/vcgra/backend.hpp"
#include "vcgra/vcgra/compiler.hpp"
#include "vcgra/vcgra/simulator.hpp"

int main() {
  using namespace vcgra;

  std::printf("== Overlay design-space exploration ==\n\n");

  // How big a dot-product kernel fits each grid, and what the conventional
  // overlay costs in logic.
  common::AsciiTable table({"Grid", "Max taps", "Overlay LUTs", "Overlay FFs",
                            "Config words", "Bus time", "Compile"});
  for (const int n : {2, 3, 4, 6, 8}) {
    overlay::OverlayArch arch;
    arch.rows = n;
    arch.cols = n;
    // Largest dot product that fits: taps muls + (taps-1) adds <= PEs.
    const int max_taps = (arch.num_pes() + 1) / 2;
    std::vector<double> coeffs(static_cast<std::size_t>(max_taps), 0.5);
    const auto dfg = overlay::make_dot_product_kernel(coeffs);
    const auto compiled = overlay::compile(dfg, arch);
    const auto cost = overlay::conventional_overlay_cost(arch);
    const auto words = compiled.settings.register_words(arch);
    table.add_row({common::strprintf("%dx%d", n, n),
                   common::strprintf("%d", max_taps),
                   common::strprintf("%zu", cost.mux_luts),
                   common::strprintf("%zu", cost.settings_ff_bits),
                   common::strprintf("%zu", words.size()),
                   common::human_seconds(overlay::conventional_config_seconds(
                       compiled.settings, arch)),
                   common::human_seconds(compiled.report.total_seconds())});
  }
  table.print();

  // Throughput of a streaming MAC filter at different grid sizes.
  std::printf("\nStreaming 25-tap MAC filter, 4096 samples:\n");
  common::AsciiTable throughput({"Grid", "Cycles", "Outputs", "Cycles/output"});
  for (const int n : {2, 4, 8}) {
    overlay::OverlayArch arch;
    arch.rows = n;
    arch.cols = n;
    const auto dfg = overlay::make_streaming_mac_kernel(0.125, 25);
    const auto compiled = overlay::compile(dfg, arch);
    const overlay::Simulator simulator(compiled);
    std::map<std::string, std::vector<double>> inputs;
    for (int s = 0; s < 4096; ++s) inputs["x"].push_back(0.01 * (s % 100));
    const auto run = simulator.run_doubles(inputs);
    const std::size_t outputs = run.outputs.at("y").size();
    throughput.add_row(
        {common::strprintf("%dx%d", n, n),
         common::strprintf("%llu", static_cast<unsigned long long>(run.cycles)),
         common::strprintf("%zu", outputs),
         common::strprintf("%.1f", static_cast<double>(run.cycles) /
                                       static_cast<double>(outputs))});
  }
  throughput.print();

  std::printf(
      "\nNote: the fully parameterized overlay costs 0 LUTs / 0 FFs at every\n"
      "size — its cost is reconfiguration latency instead (bench_reconfig).\n");
  return 0;
}
