// Fig. 5 end-to-end: retinal vessel segmentation on the VCGRA overlay,
// served through the runtime OverlayService — the Dynamic Circuit
// Specialization way.
//
// Generates a synthetic fundus image (clinical data substitute — see
// DESIGN.md), then runs the full pipeline with every hardware filter
// convolved through convolve_overlay_dcs: the 12 filters tile onto
// shared dot-tree structures per tap-group width, so the whole pipeline
// places & routes only once per width and every later filter is a
// microsecond coefficient respecialization. Writes every stage as a PGM
// image and prints quality metrics plus the service's runtime stats.
//
// Cross-checks: a 1-thread DCS rerun must be bit-identical (determinism
// is a contract, not luck), and the previous sequential-MAC service path
// is run for comparison — associativity differs, so the masks are
// reported as an agreement fraction rather than demanded bit-equal.
//
// Build & run:  ./build/examples/vessel_segmentation [output_dir]
#include <cstdio>
#include <string>

#include "vcgra/common/rng.hpp"
#include "vcgra/common/strings.hpp"
#include "vcgra/common/timer.hpp"
#include "vcgra/runtime/service.hpp"
#include "vcgra/vcgra/arch.hpp"
#include "vcgra/vision/metrics.hpp"
#include "vcgra/vision/pipeline_service.hpp"
#include "vcgra/vision/synthetic.hpp"

int main(int argc, char** argv) {
  using namespace vcgra;
  const std::string out_dir = argc > 1 ? argv[1] : "/tmp";

  common::Rng rng(7);
  vision::FundusParams fparams;  // 256x256
  const vision::FundusImage fundus = vision::generate_fundus(fparams, rng);
  fundus.rgb.write_ppm(out_dir + "/fundus.ppm");
  fundus.ground_truth.write_pgm(out_dir + "/ground_truth.pgm");
  std::printf("Synthetic fundus written to %s/fundus.ppm\n", out_dir.c_str());

  overlay::OverlayArch arch;
  vision::PipelineParams params;

  runtime::OverlayService service;  // threads = hardware concurrency
  std::printf("Running the Fig. 5 pipeline on a %s via OverlayService/DCS (%d threads)...\n",
              arch.to_string().c_str(), service.executor().thread_count());
  common::WallTimer timer;
  vision::PipelineDcsStats dcs;
  const vision::PipelineResult result = vision::run_pipeline_service_dcs(
      fundus.rgb, fundus.field_of_view, params, arch, service, &dcs);
  const double concurrent_seconds = timer.seconds();

  result.stages.green.write_pgm(out_dir + "/stage1_green.pgm");
  result.stages.equalized.write_pgm(out_dir + "/stage2_equalized.pgm");
  result.stages.masked.write_pgm(out_dir + "/stage3_masked.pgm");
  result.stages.denoised.write_pgm(out_dir + "/stage4_denoised.pgm");
  result.stages.matched.normalized().write_pgm(out_dir + "/stage5_matched.pgm");
  result.stages.textured.normalized().write_pgm(out_dir + "/stage6_textured.pgm");
  result.stages.segmented.write_pgm(out_dir + "/stage7_segmented.pgm");
  std::printf("Stage images written to %s/stage*.pgm\n", out_dir.c_str());

  const auto metrics = vision::evaluate_segmentation(
      result.stages.segmented, fundus.ground_truth, fundus.field_of_view);
  std::printf("\nQuality vs ground truth: %s\n", metrics.to_string().c_str());
  std::printf("Workload: %s FP ops, %s overlay cycles\n",
              common::human_count(static_cast<double>(result.cost.macs)).c_str(),
              common::human_count(static_cast<double>(result.cost.cycles)).c_str());
  std::printf("Filters applied: %d (1 denoise + %d matched + 4 texture)\n",
              result.cost.filters_applied, params.orientations);
  std::printf(
      "DCS tool flow: %d tap-group jobs, %d structure hits -> %d place & "
      "route runs total (%s compiling, %s respecializing)\n",
      dcs.jobs, dcs.structure_hits, dcs.jobs - dcs.structure_hits,
      common::human_seconds(dcs.compile_seconds).c_str(),
      common::human_seconds(dcs.specialize_seconds).c_str());
  std::printf("\n%s\n", service.stats().to_string().c_str());

  // Cross-check 1: a 1-thread DCS service must produce the identical mask.
  runtime::ServiceOptions serial_options;
  serial_options.threads = 1;
  runtime::OverlayService serial(serial_options);
  timer.restart();
  const vision::PipelineResult reference = vision::run_pipeline_service_dcs(
      fundus.rgb, fundus.field_of_view, params, arch, serial);
  const double serial_seconds = timer.seconds();

  const bool identical =
      reference.stages.segmented.data() == result.stages.segmented.data();
  std::printf("1-thread DCS rerun: %s in %s (concurrent: %s, speedup %.2fx) — %s\n",
              identical ? "bit-identical" : "MISMATCH",
              common::human_seconds(serial_seconds).c_str(),
              common::human_seconds(concurrent_seconds).c_str(),
              serial_seconds / concurrent_seconds,
              identical ? "determinism holds" : "determinism BROKEN");

  // Cross-check 2: the sequential-MAC service path. Different association
  // order (streaming MAC vs adder tree), so compare masks by agreement.
  runtime::OverlayService classic(serial_options);
  const vision::PipelineResult mac_path = vision::run_pipeline_service(
      fundus.rgb, fundus.field_of_view, params, arch, classic);
  const auto& a = mac_path.stages.segmented.data();
  const auto& b = result.stages.segmented.data();
  std::size_t agree = 0;
  for (std::size_t i = 0; i < a.size() && i < b.size(); ++i) {
    agree += a[i] == b[i] ? 1u : 0u;
  }
  const double agreement =
      a.empty() ? 0.0
                : static_cast<double>(agree) / static_cast<double>(a.size());
  const bool close = agreement >= 0.95;
  std::printf("Sequential-MAC path agreement: %.2f%% of mask pixels — %s\n",
              100.0 * agreement,
              close ? "paths agree (association order aside)"
                    : "DIVERGED beyond rounding");
  return identical && close ? 0 : 1;
}
