// The parameterized-configuration tool flow (Fig. 3), end to end:
//
//   generic stage:  MAC PE (coefficient annotated --PARAM) -> TCONMAP ->
//                   Template Configuration + Partial Parameterized
//                   Configuration (Boolean functions of the parameters);
//   specialization: the SCG evaluates the PPC for two coefficient values,
//                   diffs the frames, and estimates the HWICAP/MiCAP
//                   micro-reconfiguration time.
//
// Build & run:  ./build/examples/dcs_flow
#include <cstdio>

#include "vcgra/common/strings.hpp"
#include "vcgra/common/timer.hpp"
#include "vcgra/netlist/passes.hpp"
#include "vcgra/pconf/ppc.hpp"
#include "vcgra/softfloat/fpcircuits.hpp"
#include "vcgra/techmap/mapper.hpp"
#include "vcgra/vcgra/compiler.hpp"
#include "vcgra/vcgra/dfg.hpp"

int main() {
  using namespace vcgra;
  common::WallTimer timer;

  // --- generic stage -----------------------------------------------------------
  const auto format = softfloat::FpFormat::paper();
  std::printf("Building the MAC PE (FloPoCo %d/%d, coefficient = --PARAM)...\n",
              format.we, format.wf);
  softfloat::MacPe pe =
      softfloat::build_mac_pe(format, softfloat::PeStyle::kParameterized, 16);
  const netlist::Netlist source = netlist::clean(pe.netlist).netlist;
  std::printf("  synthesized: %s\n", netlist::stats(source).to_string().c_str());

  const techmap::MappedNetlist mapped = techmap::tconmap(source, 4);
  std::printf("  TCONMAP:     %s\n", mapped.stats().to_string().c_str());

  const auto ppc = pconf::ParameterizedConfiguration::generate(mapped);
  const auto stats = ppc.stats();
  std::printf("  TC:  %zu static configuration bits\n", stats.static_bits);
  std::printf("  PPC: %zu tunable bits in %zu frames, %zu shared BDD nodes\n",
              stats.tunable_bits, stats.frames, stats.bdd_nodes);
  std::printf("  generic stage total: %s\n\n",
              common::human_seconds(timer.seconds()).c_str());

  // --- specialization stage -----------------------------------------------------
  const auto encode_params = [&](double coefficient, unsigned count) {
    std::vector<bool> params(source.params().size(), false);
    const auto bits = softfloat::FpValue::from_double(format, coefficient).bits();
    for (int i = 0; i < format.total_bits(); ++i) {
      params[static_cast<std::size_t>(i)] = (bits >> i) & 1;
    }
    for (int i = 0; i < 16; ++i) {
      params[static_cast<std::size_t>(format.total_bits() + i)] = (count >> i) & 1;
    }
    return params;
  };

  timer.restart();
  const auto bits_a = ppc.specialize(encode_params(0.7315, 25));
  const auto bits_b = ppc.specialize(encode_params(-0.2041, 25));
  std::printf("SCG evaluated the PPC twice in %s\n",
              common::human_seconds(timer.seconds()).c_str());

  std::size_t changed_bits = 0;
  for (std::size_t i = 0; i < bits_a.size(); ++i) {
    if (bits_a[i] != bits_b[i]) ++changed_bits;
  }
  const auto dirty = ppc.dirty_frames(bits_a, bits_b);
  std::printf("Coefficient change 0.7315 -> -0.2041:\n");
  std::printf("  %zu of %zu tunable bits flip, touching %zu of %zu frames\n",
              changed_bits, bits_a.size(), dirty.size(), stats.frames);
  const auto cost = ppc.reconfig_cost(dirty.size());
  std::printf("  micro-reconfiguration: %s\n", cost.to_string().c_str());

  const auto full = ppc.reconfig_cost(stats.frames);
  std::printf("Full PE respecialization (all frames): HWICAP %s, MiCAP %s\n",
              common::human_seconds(full.hwicap_seconds).c_str(),
              common::human_seconds(full.micap_seconds).c_str());
  std::printf("(The paper's §V estimate for its PE composition is 251 ms.)\n");

  // --- sanity: the specialized netlist is the specialized function --------------
  const netlist::Netlist spec =
      mapped.specialize(encode_params(0.7315, 25));
  std::printf("\nSpecialized instance: %s (TCONs dissolved into wires)\n",
              netlist::stats(spec).to_string().c_str());

  // --- the same split, one level up -----------------------------------------
  // The compile pipeline mirrors DCS: place & route once per kernel
  // *structure*, then bind coefficients per request — so a parameter
  // sweep pays the flow on the left exactly once.
  std::printf("\nTool-flow view (compile_structure + specialize):\n");
  const overlay::ParsedKernel parsed = overlay::parse_kernel_symbolic(
      "input x;\nparam c = 0.7315;\ny = mac(x, c, 25);\noutput y;\n");
  overlay::OverlayArch arch;
  timer.restart();
  const overlay::CompiledStructure structure =
      overlay::compile_structure(parsed.dfg, arch);
  const double structure_seconds = timer.seconds();
  timer.restart();
  const overlay::Compiled with_defaults = overlay::specialize(structure);
  const overlay::Compiled retuned =
      overlay::specialize(structure, {{"c", -0.2041}});
  const double specialize_seconds = timer.seconds() / 2;
  std::printf("  place & route once:      %s\n",
              common::human_seconds(structure_seconds).c_str());
  std::printf("  respecialize per value:  %s (coefficient %g -> %g, "
              "same placement and routes)\n",
              common::human_seconds(specialize_seconds).c_str(),
              parsed.params.at("c"), -0.2041);
  (void)with_defaults;
  (void)retuned;
  return 0;
}
