// Persistent overlay library + warm start: build the library offline,
// serve online with zero place & route.
//
// Self-contained mode (no arguments): creates a scratch store, AOT-
// compiles a small kernel library into it (what `vcgra_overlayc` does
// from kernel files), then boots a warm-started OverlayService against
// the store and shows that every job — including a freshly "restarted"
// service — runs without a single tool-flow invocation.
//
// Deployment mode: pass a store directory (typically populated by
// `vcgra_overlayc --store DIR kernel.vk ...`) and, optionally, the same
// kernel files; the example then serves those kernels from the library:
//
//   ./build/tools/vcgra_overlayc --store /var/vcgra/store k1.vk k2.vk
//   ./build/examples/aot_warm_start /var/vcgra/store k1.vk k2.vk
//
// Observability flags (either mode):
//   --trace FILE   export a Chrome trace of the served jobs to FILE
//   --stats FILE   write the service + process metrics snapshot as JSON
//
// Exits non-zero if any served job re-ran place & route.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "vcgra/common/strings.hpp"
#include "vcgra/common/timer.hpp"
#include "vcgra/runtime/overlay_cache.hpp"
#include "vcgra/runtime/service.hpp"
#include "vcgra/store/overlay_store.hpp"
#include "vcgra/telemetry/health.hpp"
#include "vcgra/telemetry/metrics.hpp"
#include "vcgra/telemetry/trace.hpp"
#include "vcgra/vcgra/compiler.hpp"
#include "vcgra/vcgra/dfg.hpp"

using namespace vcgra;

namespace {

/// The built-in demo library: dot trees of three widths plus a
/// streaming-MAC filter (all respecializable shapes).
std::vector<std::string> builtin_kernels() {
  std::vector<std::string> kernels;
  for (const int taps : {4, 6, 8}) {
    kernels.push_back(overlay::dot_tree_text(
        std::vector<double>(static_cast<std::size_t>(taps), 0.5)));
  }
  kernels.push_back("input x;\nparam c = 0.9;\ny = mac(x, c, 4);\noutput y;\n");
  return kernels;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read kernel file '" + path + "'");
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

}  // namespace

int main(int argc, char** argv) {
  const overlay::OverlayArch arch;
  constexpr std::uint64_t kSeed = 1;

  std::string trace_path;
  std::string stats_path;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if ((arg == "--trace" || arg == "--stats") && i + 1 < argc) {
      (arg == "--trace" ? trace_path : stats_path) = argv[++i];
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr,
                   "usage: aot_warm_start [--trace FILE] [--stats FILE] "
                   "[store_dir [kernel.vk ...]]\n");
      return 2;
    } else {
      positional.push_back(arg);
    }
  }

  std::filesystem::path store_dir;
  bool scratch = false;
  std::vector<std::string> kernels;
  if (!positional.empty()) {
    store_dir = positional[0];
    for (std::size_t i = 1; i < positional.size(); ++i) {
      kernels.push_back(read_file(positional[i]));
    }
    if (kernels.empty()) kernels = builtin_kernels();
  } else {
    scratch = true;
    store_dir = std::filesystem::temp_directory_path() /
                common::strprintf("vcgra-aot-demo-%d", static_cast<int>(getpid()));
    kernels = builtin_kernels();
  }

  std::printf("== Persistent overlay library & warm start ==\n");
  std::printf("store: %s\n\n", store_dir.string().c_str());

  // --- Phase 1: build the library ahead of time ------------------------------
  // (This is exactly what `vcgra_overlayc --store DIR kernels...` does.)
  {
    store::OverlayStore library(store_dir);
    common::WallTimer timer;
    int compiled = 0;
    for (const std::string& text : kernels) {
      const overlay::ParsedKernel parsed = overlay::parse_kernel_symbolic(text);
      const std::string key =
          runtime::structure_key(parsed.structural_text, arch, kSeed);
      if (library.save(key,
                       overlay::compile_structure_canonical(parsed, arch, kSeed))) {
        ++compiled;
      }
    }
    std::printf("[AOT] %d/%zu kernels compiled into the library (%s); "
                "%zu records on disk\n",
                compiled, kernels.size(),
                common::human_seconds(timer.seconds()).c_str(),
                library.size());
  }

  // --- Phase 2: serve against the library, warm-started ----------------------
  bool ok = true;
  {
    runtime::ServiceOptions options;
    options.threads = 2;
    options.store_dir = store_dir.string();
    options.warm_start_structures = 64;  // preload the whole (small) library
    options.trace_path = trace_path;  // empty = tracer stays off
    // Continuous observability: sample the metric registry every 50 ms
    // into time-series windows and evaluate the default service SLO
    // rules; the final window lands in the stats snapshot under
    // "monitor" so `vcgra_top` can render health + sparklines from it.
    if (!stats_path.empty()) options.monitor_interval_seconds = 0.05;
    common::WallTimer boot;
    runtime::OverlayService service(options);
    std::printf("\n[serve] warm-started service in %s: %llu structures "
                "preloaded\n",
                common::human_seconds(boot.seconds()).c_str(),
                static_cast<unsigned long long>(
                    service.stats().cache.disk_preloads));

    for (const std::string& text : kernels) {
      const overlay::ParsedKernel parsed = overlay::parse_kernel_symbolic(text);
      runtime::JobRequest request;
      request.kernel_text = text;
      request.seed = kSeed;
      for (const int input : parsed.dfg.inputs()) {
        std::vector<double> stream;
        for (int i = 0; i < 64; ++i) stream.push_back(0.0625 * (i - 32));
        request.inputs[parsed.dfg.nodes()[static_cast<std::size_t>(input)].name] =
            std::move(stream);
      }
      const runtime::JobResult result = service.run(std::move(request));
      const bool no_toolflow =
          result.structure_hit && result.compile_seconds == 0;
      std::printf("  job: %-11s place&route %s  (%s specialize, %s total)\n",
                  no_toolflow ? "warm" : "COLD",
                  no_toolflow ? "skipped" : "RAN",
                  common::human_seconds(result.specialize_seconds).c_str(),
                  common::human_seconds(result.latency_seconds).c_str());
      if (!result.stages.empty()) {
        std::printf("       stages:");
        for (const telemetry::StageTiming& stage : result.stages) {
          std::printf(" %s=%s", stage.name.c_str(),
                      common::human_seconds(stage.seconds).c_str());
        }
        std::printf("\n");
      }
      ok = ok && no_toolflow;
    }

    // Graph + streaming-session smoke: chain the first library kernel
    // into the last as one DAG (raw-bits edge), run it, then stream two
    // chunks through a pinned session. Both ride the same warm cache —
    // so they must stay tool-flow-free too — and they put graph.admit /
    // graph.run / session.feed spans in the exported trace and graph /
    // session counters in the stats snapshot.
    {
      const overlay::ParsedKernel front_parsed =
          overlay::parse_kernel_symbolic(kernels.front());
      const overlay::ParsedKernel back_parsed =
          overlay::parse_kernel_symbolic(kernels.back());
      const auto node_name = [](const overlay::ParsedKernel& parsed, int node) {
        return parsed.dfg.nodes()[static_cast<std::size_t>(node)].name;
      };
      runtime::GraphRequest graph_request;
      graph_request.arch = arch;
      runtime::GraphStage producer;
      producer.name = "producer";
      producer.kernel_text = kernels.front();
      producer.seed = kSeed;
      for (const int input : front_parsed.dfg.inputs()) {
        std::vector<double> stream;
        for (int i = 0; i < 64; ++i) stream.push_back(0.03125 * (i - 16));
        producer.inputs[node_name(front_parsed, input)] = std::move(stream);
      }
      runtime::GraphStage consumer;
      consumer.name = "consumer";
      consumer.kernel_text = kernels.back();
      consumer.seed = kSeed;
      consumer.keep_output = true;
      graph_request.stages = {std::move(producer), std::move(consumer)};
      graph_request.edges.push_back(
          {"producer", node_name(front_parsed, front_parsed.dfg.outputs().front()),
           "consumer", node_name(back_parsed, back_parsed.dfg.inputs().front())});
      const auto graph = service.admit_graph(graph_request);
      bool graph_warm = true;
      for (const auto& stage : graph->stages()) {
        graph_warm = graph_warm && stage.structure_hit;
      }
      const runtime::GraphResult run = service.run_graph(*graph);

      runtime::SessionRequest session_request;
      session_request.kernel_text = kernels.back();
      session_request.arch = arch;
      session_request.seed = kSeed;
      const auto session = service.open_session(session_request);
      for (int chunk = 0; chunk < 2; ++chunk) {
        std::map<std::string, std::vector<double>> feed;
        std::vector<double> stream;
        for (int i = 0; i < 32; ++i) stream.push_back(0.0625 * (i - 16));
        feed[node_name(back_parsed, back_parsed.dfg.inputs().front())] =
            std::move(stream);
        session->feed(feed);
      }
      std::printf("[serve] graph: %d stages, %d raw edge(s), place&route %s; "
                  "session: %llu chunks streamed\n",
                  run.stages, run.edges_raw,
                  graph_warm ? "skipped" : "RAN",
                  static_cast<unsigned long long>(session->chunks_fed()));
      ok = ok && graph_warm;
    }

    const runtime::CacheStats stats = service.stats().cache;
    std::printf("[serve] place & route runs this lifetime: %llu "
                "(disk hits %llu, preloads %llu)\n",
                static_cast<unsigned long long>(stats.structure_misses),
                static_cast<unsigned long long>(stats.disk_hits),
                static_cast<unsigned long long>(stats.disk_preloads));
    ok = ok && stats.structure_misses == 0;

    if (!stats_path.empty()) {
      // Service-exact percentiles plus the process-wide metric registry,
      // one machine-readable file (vcgra_stats pretty-prints/diffs it and
      // vcgra_top renders it). Close one last monitor window first so the
      // health verdict and series cover everything served above even when
      // the run finished inside a single sampling interval.
      std::string monitor_json = "null";
      if (telemetry::Monitor* monitor = service.monitor()) {
        monitor->tick_at(telemetry::trace_now_ns());
        monitor_json = monitor->to_json();
      }
      const std::string json =
          "{\"service\": " + service.stats().to_json() +
          ",\n\"process\": " + telemetry::metrics().snapshot().to_json() +
          ",\n\"monitor\": " + monitor_json + "}\n";
      std::ofstream out(stats_path);
      out << json;
      std::printf("[serve] stats snapshot written to %s (health: %s)\n",
                  stats_path.c_str(),
                  telemetry::to_string(service.health().overall));
    }
  }
  // The service destructor exports the Chrome trace on shutdown.
  if (!trace_path.empty()) {
    std::printf("[serve] trace written to %s (load in chrome://tracing)\n",
                trace_path.c_str());
  }

  if (scratch) {
    std::error_code ec;
    std::filesystem::remove_all(store_dir, ec);
  }
  std::printf("\naot_warm_start: %s\n", ok ? "PASS — the restarted service "
                                             "never ran the tool flow"
                                           : "FAIL — a job paid place & route");
  return ok ? 0 : 1;
}
