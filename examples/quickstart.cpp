// Quickstart: compile a kernel onto a VCGRA and run it.
//
//   1. describe the application in the kernel language (PE granularity);
//   2. compile it onto a 4x4 overlay (synthesis -> PE mapping ->
//      placement -> virtual-network routing -> settings generation);
//   3. run the cycle-level simulator on input streams.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "vcgra/common/strings.hpp"
#include "vcgra/vcgra/arch.hpp"
#include "vcgra/vcgra/backend.hpp"
#include "vcgra/vcgra/compiler.hpp"
#include "vcgra/vcgra/simulator.hpp"

int main() {
  using namespace vcgra;

  // A 4-tap FIR-style dot product: y = 0.5 x0 + 0.25 x1 - 0.75 x2 + 1.5 x3.
  const char* kernel = R"(
    input x0; input x1; input x2; input x3;
    param c0 = 0.5;  param c1 = 0.25;
    param c2 = -0.75; param c3 = 1.5;
    p0 = mul(x0, c0);  p1 = mul(x1, c1);
    p2 = mul(x2, c2);  p3 = mul(x3, c3);
    s0 = add(p0, p1);  s1 = add(p2, p3);
    y  = add(s0, s1);
    output y;
  )";

  overlay::OverlayArch arch;  // 4x4 grid, FloPoCo (6,26) MAC PEs
  std::printf("Overlay: %s\n", arch.to_string().c_str());

  const overlay::Compiled compiled = overlay::compile_kernel(kernel, arch);
  std::printf("Compiled in %s (synth %s, map %s, place %s, route %s)\n",
              common::human_seconds(compiled.report.total_seconds()).c_str(),
              common::human_seconds(compiled.report.synth_seconds).c_str(),
              common::human_seconds(compiled.report.map_seconds).c_str(),
              common::human_seconds(compiled.report.place_seconds).c_str(),
              common::human_seconds(compiled.report.route_seconds).c_str());
  std::printf("PEs used: %d / %d, virtual-network hops: %d\n",
              compiled.report.pes_used, arch.num_pes(), compiled.report.total_hops);

  // Settings registers as the conventional overlay would receive them.
  const auto words = compiled.settings.register_words(arch);
  std::printf("Settings stream: %zu 32-bit words (conventional bus: %s)\n",
              words.size(),
              common::human_seconds(
                  overlay::conventional_config_seconds(compiled.settings, arch))
                  .c_str());

  // Stream 8 samples through the configured grid.
  overlay::Simulator simulator(compiled);
  std::map<std::string, std::vector<double>> inputs;
  for (int i = 0; i < 4; ++i) {
    std::vector<double> stream;
    for (int s = 0; s < 8; ++s) stream.push_back(0.1 * (s + 1) * (i + 1));
    inputs["x" + std::to_string(i)] = stream;
  }
  const overlay::RunResult run = simulator.run_doubles(inputs);
  std::printf("\nSimulated %zu samples in %llu cycles "
              "(pipeline depth %d, %llu FP ops)\n",
              run.outputs.at("y").size(),
              static_cast<unsigned long long>(run.cycles), run.pipeline_depth,
              static_cast<unsigned long long>(run.fp_ops));
  std::printf("y = [");
  for (const auto& v : run.outputs.at("y")) std::printf(" %.5f", v.to_double());
  std::printf(" ]\n");
  std::printf("   (reference s=1: 0.5*0.1 + 0.25*0.2 - 0.75*0.3 + 1.5*0.4 = %.5f)\n",
              0.5 * 0.1 + 0.25 * 0.2 - 0.75 * 0.3 + 1.5 * 0.4);
  return 0;
}
