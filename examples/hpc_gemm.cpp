// Tiled GEMM on the VCGRA overlay service, end to end.
//
// Shows the decomposition the HPC suite uses for BLAS-3 work: each
// output column of C = A * B becomes a chain of adder-tree dot-product
// kernels (one per k-tile, coefficients = the B tile), every tile job
// goes through OverlayService concurrently, and the host folds partial
// columns with the same FloPoCo arithmetic the PEs use. Run it twice in
// one process and the second GEMM compiles nothing at all.
#include <cstdio>

#include "vcgra/hpc/bench.hpp"

int main() {
  using namespace vcgra;

  hpc::HpcBenchOptions options;
  options.arch.rows = 4;  // the paper's 4x4 grid, FloPoCo (6,26) format
  options.arch.cols = 4;
  options.service.threads = 4;
  options.service.cost_model = runtime::ServiceOptions::CostModel::kScg;
  hpc::HpcBench bench(options);

  // C[32x4] = A[32x18] * B[18x4], k tiled by 6 (11 PEs per tile kernel).
  const hpc::GemmReport cold = bench.run_gemm(32, 4, 18, 6);
  const hpc::GemmReport warm = bench.run_gemm(32, 4, 18, 6);

  std::printf("tiled GEMM %dx%d = %dx%d * %dx%d, tile_k=%d\n", cold.m, cold.n,
              cold.m, cold.k, cold.k, cold.n, cold.tile_k);
  std::printf("  tile kernels:        %d (%d on the warm pass served from cache)\n",
              cold.jobs, static_cast<int>(warm.cache_hits));
  std::printf("  modeled cycles:      %llu (%.2f FLOP/cycle)\n",
              static_cast<unsigned long long>(cold.cycles), cold.flop_per_cycle);
  std::printf("  compile time:        %.2f ms cold, %.2f ms warm\n",
              1e3 * cold.compile_seconds, 1e3 * warm.compile_seconds);
  std::printf("  bit-exact vs softfloat reference: %s\n",
              cold.bit_exact && warm.bit_exact ? "yes" : "NO");
  std::printf("  max rel err vs double GEMM:       %.3g (tolerance %.3g)\n",
              cold.max_rel_err, cold.tolerance);

  const runtime::ServiceStats stats = bench.service().stats();
  std::printf("\nservice: %s\n", stats.to_string().c_str());
  return cold.passed() && warm.passed() ? 0 : 1;
}
